//! High-level driver: iterate Algorithm 2 until convergence or budget.

use std::time::{Duration, Instant};

use paradmm_graph::{FactorGraph, VarStore};
use paradmm_prox::ProxOp;

use crate::backend::SweepExecutor;
use crate::plan::{ReplanPolicy, ReplanState};
use crate::problem::AdmmProblem;
use crate::residuals::{Residuals, StoppingCriteria};
use crate::scheduler::Scheduler;
use crate::timing::UpdateTimings;

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Which built-in backend to construct (ignored by
    /// [`Solver::with_backend`], which receives one directly).
    pub scheduler: Scheduler,
    /// Uniform penalty weight ρ (ignored by
    /// [`Solver::from_problem`], which takes parameters from the problem).
    pub rho: f64,
    /// Uniform dual step α.
    pub alpha: f64,
    /// Convergence / budget policy.
    pub stopping: StoppingCriteria,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            scheduler: Scheduler::Serial,
            rho: 1.0,
            alpha: 1.0,
            stopping: StoppingCriteria::default(),
        }
    }
}

/// Why the solver stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Residuals fell below tolerance.
    Converged,
    /// The iteration budget was exhausted.
    MaxIterations,
}

/// Outcome of a solve.
#[derive(Debug, Clone)]
pub struct SolverReport {
    /// Iterations executed.
    pub iterations: usize,
    /// Why iteration stopped.
    pub stop_reason: StopReason,
    /// Total wall-clock time inside update sweeps.
    pub elapsed: Duration,
    /// Per-update-kind timing breakdown.
    pub timings: UpdateTimings,
    /// Residuals at the final check (if any check ran).
    pub final_residuals: Option<Residuals>,
}

impl SolverReport {
    /// Seconds per iteration, the paper's primary metric.
    pub fn seconds_per_iteration(&self) -> f64 {
        if self.iterations == 0 {
            0.0
        } else {
            self.elapsed.as_secs_f64() / self.iterations as f64
        }
    }
}

/// Owns the problem, the ADMM state, and the execution backend.
///
/// Generic over the backend so callers that need a concrete one (e.g.
/// `paradmm-gpusim`'s engine querying its simulated clock) keep typed
/// access via [`Solver::backend`]; the default `dyn SweepExecutor` form
/// is what [`Solver::new`] / [`Solver::from_problem`] build from the
/// [`SolverOptions::scheduler`] descriptor.
pub struct Solver<B: SweepExecutor + ?Sized = dyn SweepExecutor> {
    problem: AdmmProblem,
    store: VarStore,
    options: SolverOptions,
    replan: Option<(ReplanPolicy, ReplanState)>,
    backend: Box<B>,
}

impl Solver {
    /// Builds a solver from a graph and per-factor operators, with uniform
    /// `ρ/α` taken from `options` and the backend from
    /// [`SolverOptions::scheduler`].
    pub fn new(graph: FactorGraph, proxes: Vec<Box<dyn ProxOp>>, options: SolverOptions) -> Self {
        let problem = AdmmProblem::new(graph, proxes, options.rho, options.alpha);
        Self::from_problem(problem, options)
    }

    /// Builds a solver from a fully-specified problem (custom per-edge
    /// parameters preserved), backend from [`SolverOptions::scheduler`].
    pub fn from_problem(problem: AdmmProblem, options: SolverOptions) -> Self {
        let store = VarStore::zeros(problem.graph());
        let backend = options.scheduler.to_backend();
        Solver {
            problem,
            store,
            options,
            replan: None,
            backend,
        }
    }

    /// Builds a solver from a problem and an already-boxed backend.
    /// [`SolverOptions::scheduler`] is ignored — `backend` is the
    /// execution strategy.
    pub fn from_problem_with_backend(
        problem: AdmmProblem,
        options: SolverOptions,
        backend: Box<dyn SweepExecutor>,
    ) -> Self {
        let store = VarStore::zeros(problem.graph());
        Solver {
            problem,
            store,
            options,
            replan: None,
            backend,
        }
    }

    /// Replaces the backend by descriptor (e.g. to compare strategies on
    /// one state).
    pub fn set_scheduler(&mut self, scheduler: Scheduler) {
        self.options.scheduler = scheduler;
        self.backend = scheduler.to_backend();
    }

    /// Replaces the backend with any [`SweepExecutor`] implementation.
    pub fn set_backend(&mut self, backend: Box<dyn SweepExecutor>) {
        self.backend = backend;
    }
}

impl<B: SweepExecutor> Solver<B> {
    /// Builds a solver around a concrete backend, keeping typed access to
    /// it through [`Solver::backend`] / [`Solver::backend_mut`].
    pub fn with_backend(problem: AdmmProblem, options: SolverOptions, backend: B) -> Solver<B> {
        let store = VarStore::zeros(problem.graph());
        Solver {
            problem,
            store,
            options,
            replan: None,
            backend: Box::new(backend),
        }
    }
}

impl<B: SweepExecutor + ?Sized> Solver<B> {
    /// The execution backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable backend access (tuning knobs on concrete backends).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// The ADMM state.
    pub fn store(&self) -> &VarStore {
        &self.store
    }

    /// Mutable ADMM state (warm starts, custom initialization).
    pub fn store_mut(&mut self) -> &mut VarStore {
        &mut self.store
    }

    /// The problem definition.
    pub fn problem(&self) -> &AdmmProblem {
        &self.problem
    }

    /// Mutable problem (adaptive-ρ schemes).
    pub fn problem_mut(&mut self) -> &mut AdmmProblem {
        &mut self.problem
    }

    /// Simultaneous shared problem + mutable store access (custom
    /// initialization that reads the topology while writing state).
    pub fn problem_and_store_mut(&mut self) -> (&AdmmProblem, &mut VarStore) {
        (&self.problem, &mut self.store)
    }

    /// Simultaneous mutable access to problem and store (operator
    /// refresh + warm-start in one step, e.g. receding-horizon MPC).
    pub fn parts_mut(&mut self) -> (&mut AdmmProblem, &mut VarStore) {
        (&mut self.problem, &mut self.store)
    }

    /// The configured options.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Installs an explicit [`crate::SweepPlan`] on the problem; every
    /// backend executes it from the next block on.
    ///
    /// # Panics
    /// If the plan was built for a different graph shape.
    pub fn set_plan(&mut self, plan: crate::SweepPlan) {
        self.problem.set_plan(plan);
    }

    /// Measures this problem's per-operator and per-sweep costs with
    /// `planner`, compiles the measured fused plan, installs it, and
    /// returns the installed plan — the one-call route to cost-model
    /// scheduling (the paper's future-work item 2).
    pub fn plan_measured(&mut self, planner: &crate::Planner) -> &crate::SweepPlan {
        let plan = planner.plan(&self.problem);
        self.problem.set_plan(plan);
        self.problem.plan().expect("plan was just installed")
    }

    /// Enables online re-planning: at each residual check the policy
    /// counts the block, periodically re-measures sweep costs, and on
    /// drift recompiles the plan and asks the backend to
    /// [`SweepExecutor::repartition`] — the planner kept live across the
    /// whole solve instead of frozen at startup. See
    /// [`crate::ReplanPolicy`].
    pub fn set_replan_policy(&mut self, policy: ReplanPolicy) {
        self.replan = Some((policy, ReplanState::default()));
    }

    /// Disables online re-planning (the currently installed plan stays).
    pub fn clear_replan_policy(&mut self) {
        self.replan = None;
    }

    /// Replan bookkeeping (blocks seen, replans installed), when a
    /// policy is active.
    pub fn replan_state(&self) -> Option<&ReplanState> {
        self.replan.as_ref().map(|(_, s)| s)
    }

    /// Randomizes all state uniformly in `[lo, hi)` from a deterministic
    /// seed — the analogue of the paper's `initialize_X_N_Z_M_U_rand`.
    pub fn init_random(&mut self, lo: f64, hi: f64, seed: u64) {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        self.store.init_uniform(lo, hi, move || {
            // xorshift64*: fast, deterministic, good enough for init noise.
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            (s.wrapping_mul(0x2545f4914f6cdd1d) >> 11) as f64 / (1_u64 << 53) as f64
        });
    }

    /// Current residuals (an O(|E|·d) sweep).
    pub fn residuals(&self) -> Residuals {
        Residuals::compute(self.problem.graph(), self.problem.params(), &self.store)
    }

    /// Runs at most `max_iters` iterations, checking the configured
    /// stopping criteria every `check_every` iterations.
    pub fn run(&mut self, max_iters: usize) -> SolverReport {
        self.run_impl(max_iters, None)
    }

    /// Like [`Solver::run`], additionally appending `(iteration,
    /// residuals)` to `trace` at every convergence check — the residual
    /// trace a [`crate::SolveOutcome`] carries.
    pub fn run_traced(
        &mut self,
        max_iters: usize,
        trace: &mut Vec<(usize, Residuals)>,
    ) -> SolverReport {
        self.run_impl(max_iters, Some(trace))
    }

    fn run_impl(
        &mut self,
        max_iters: usize,
        mut trace: Option<&mut Vec<(usize, Residuals)>>,
    ) -> SolverReport {
        let stopping = self.options.stopping;
        let check_every = stopping.check_every;
        let n_components = self.problem.graph().num_edges() * self.problem.graph().dims();
        let mut timings = UpdateTimings::new();
        let mut done = 0usize;
        let mut final_residuals = None;
        let start = Instant::now();
        let mut stop_reason = StopReason::MaxIterations;

        while done < max_iters {
            let block = if check_every == usize::MAX {
                max_iters - done
            } else {
                check_every.max(1).min(max_iters - done)
            };
            self.backend
                .run_block(&self.problem, &mut self.store, block, &mut timings);
            done += block;
            if check_every != usize::MAX {
                let r = self.residuals();
                let conv = r.converged(n_components, stopping.eps_abs, stopping.eps_rel);
                if let Some(t) = trace.as_deref_mut() {
                    t.push((done, r));
                }
                final_residuals = Some(r);
                if conv {
                    stop_reason = StopReason::Converged;
                    break;
                }
                // Online replan between blocks only — never mid-block,
                // so in-flight iterations are undisturbed and the next
                // block starts from a coherent gathered state.
                if let Some((policy, state)) = self.replan.as_mut() {
                    if let Some(costs) = policy.maybe_replan(state, &mut self.problem) {
                        self.backend.repartition(&self.problem, &costs);
                    }
                }
            }
        }
        SolverReport {
            iterations: done,
            stop_reason,
            elapsed: start.elapsed(),
            timings,
            final_residuals,
        }
    }

    /// Runs with the options' own `max_iters` budget.
    pub fn run_default(&mut self) -> SolverReport {
        self.run(self.options.stopping.max_iters)
    }

    /// Consumes the solver and returns the final ADMM state without
    /// copying it — how [`crate::SolveRequest::solve`] hands the state
    /// to its [`crate::SolveOutcome`].
    pub fn into_store(self) -> VarStore {
        self.store
    }

    /// Serializes the full ADMM state (x, m, u, n, z) into a byte buffer
    /// — a mid-solve checkpoint for warm restarts across processes.
    pub fn save_checkpoint(&self) -> Vec<u8> {
        let mut out = Vec::new();
        paradmm_graph::io::encode_store(&self.store, &mut out);
        out
    }

    /// Restores a checkpoint previously produced by
    /// [`Solver::save_checkpoint`] for the same graph shape.
    pub fn load_checkpoint(&mut self, bytes: &[u8]) -> Result<(), paradmm_graph::io::IoError> {
        let store = paradmm_graph::io::decode_store(bytes, self.problem.graph())?;
        self.store = store;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BarrierBackend, RayonBackend, SerialBackend};
    use paradmm_graph::{GraphBuilder, VarId};
    use paradmm_prox::{ProxOp, QuadraticProx};

    fn two_quadratics() -> (FactorGraph, Vec<Box<dyn ProxOp>>) {
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        b.add_factor(&[v]);
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![
            Box::new(QuadraticProx::isotropic(1, 1.0, &[1.0])),
            Box::new(QuadraticProx::isotropic(1, 1.0, &[5.0])),
        ];
        (b.build(), proxes)
    }

    #[test]
    fn converges_and_reports() {
        let (g, p) = two_quadratics();
        let mut solver = Solver::new(g, p, SolverOptions::default());
        let report = solver.run(1000);
        assert_eq!(report.stop_reason, StopReason::Converged);
        assert!(report.iterations < 1000);
        assert!(report.final_residuals.is_some());
        let z = solver.store().z_var(VarId(0));
        assert!((z[0] - 3.0).abs() < 1e-5, "z = {}", z[0]);
    }

    #[test]
    fn fixed_iteration_mode_never_converges_early() {
        let (g, p) = two_quadratics();
        let opts = SolverOptions {
            stopping: StoppingCriteria::fixed_iterations(37),
            ..SolverOptions::default()
        };
        let mut solver = Solver::new(g, p, opts);
        let report = solver.run(37);
        assert_eq!(report.iterations, 37);
        assert_eq!(report.stop_reason, StopReason::MaxIterations);
        assert!(report.final_residuals.is_none());
    }

    #[test]
    fn seconds_per_iteration_sane() {
        let (g, p) = two_quadratics();
        let mut solver = Solver::new(g, p, SolverOptions::default());
        let report = solver.run(20);
        assert!(report.seconds_per_iteration() >= 0.0);
        assert!(report.elapsed.as_secs_f64() < 10.0);
    }

    #[test]
    fn init_random_is_deterministic() {
        let (g, p) = two_quadratics();
        let mut s1 = Solver::new(g, p, SolverOptions::default());
        s1.init_random(-1.0, 1.0, 42);
        let z1 = s1.store().z.clone();

        let (g2, p2) = two_quadratics();
        let mut s2 = Solver::new(g2, p2, SolverOptions::default());
        s2.init_random(-1.0, 1.0, 42);
        assert_eq!(z1, s2.store().z);

        let (g3, p3) = two_quadratics();
        let mut s3 = Solver::new(g3, p3, SolverOptions::default());
        s3.init_random(-1.0, 1.0, 43);
        assert_ne!(z1, s3.store().z);
    }

    #[test]
    fn random_init_still_converges_to_optimum() {
        let (g, p) = two_quadratics();
        let mut solver = Solver::new(g, p, SolverOptions::default());
        solver.init_random(-10.0, 10.0, 7);
        let report = solver.run(2000);
        assert_eq!(report.stop_reason, StopReason::Converged);
        assert!((solver.store().z_var(VarId(0))[0] - 3.0).abs() < 1e-4);
    }

    #[test]
    fn checkpoint_roundtrip_resumes_identically() {
        let (g, p) = two_quadratics();
        let mut a = Solver::new(g, p, SolverOptions::default());
        a.run(25);
        let snapshot = a.save_checkpoint();
        a.run(25);
        let z_final = a.store().z.clone();

        let (g2, p2) = two_quadratics();
        let mut b = Solver::new(g2, p2, SolverOptions::default());
        b.load_checkpoint(&snapshot).unwrap();
        b.run(25);
        assert_eq!(b.store().z, z_final, "resumed run must be bit-identical");
    }

    #[test]
    fn checkpoint_shape_mismatch_rejected() {
        let (g, p) = two_quadratics();
        let a = Solver::new(g, p, SolverOptions::default());
        let snapshot = a.save_checkpoint();

        let mut builder = paradmm_graph::GraphBuilder::new(2);
        let v = builder.add_var();
        builder.add_factor(&[v]);
        let other: Vec<Box<dyn ProxOp>> = vec![Box::new(paradmm_prox::ZeroProx)];
        let mut b = Solver::new(builder.build(), other, SolverOptions::default());
        assert!(b.load_checkpoint(&snapshot).is_err());
    }

    #[test]
    fn scheduler_swap_preserves_state() {
        let (g, p) = two_quadratics();
        let mut solver = Solver::new(g, p, SolverOptions::default());
        solver.run(10);
        let z_mid = solver.store().z[0];
        solver.set_scheduler(Scheduler::Rayon { threads: Some(2) });
        solver.run(10);
        // State continued from z_mid, not reset.
        assert_ne!(solver.store().z[0], 0.0);
        let _ = z_mid;
    }

    #[test]
    fn with_backend_keeps_typed_access() {
        let (g, p) = two_quadratics();
        let problem = AdmmProblem::new(g, p, 1.0, 1.0);
        let mut solver = Solver::with_backend(
            problem,
            SolverOptions::default(),
            RayonBackend::new(Some(2)),
        );
        assert_eq!(solver.backend().threads(), Some(2));
        let report = solver.run(500);
        assert_eq!(report.stop_reason, StopReason::Converged);
    }

    #[test]
    fn set_backend_swaps_execution_strategy() {
        let (g, p) = two_quadratics();
        let mut solver = Solver::new(g, p, SolverOptions::default());
        solver.run(5);
        solver.set_backend(Box::new(BarrierBackend::new(2)));
        assert_eq!(solver.backend().name(), "barrier");
        solver.set_backend(Box::new(SerialBackend));
        let report = solver.run(1000);
        assert_eq!(report.stop_reason, StopReason::Converged);
    }

    #[test]
    fn all_synchronous_backends_agree_through_solver() {
        let run_with = |scheduler: Scheduler| {
            let (g, p) = two_quadratics();
            let opts = SolverOptions {
                scheduler,
                stopping: StoppingCriteria::fixed_iterations(40),
                ..SolverOptions::default()
            };
            let mut solver = Solver::new(g, p, opts);
            solver.run(40);
            solver.store().z.clone()
        };
        let serial = run_with(Scheduler::Serial);
        assert_eq!(serial, run_with(Scheduler::Rayon { threads: Some(2) }));
        assert_eq!(serial, run_with(Scheduler::Barrier { threads: 2 }));
        assert_eq!(serial, run_with(Scheduler::WorkSteal { threads: 2 }));
        assert_eq!(serial, run_with(Scheduler::Sharded { parts: 2 }));
        assert_eq!(serial, run_with(Scheduler::Fleet { threads: 2 }));
        assert_eq!(serial, run_with(Scheduler::Auto { threads: 2 }));
    }

    #[test]
    fn sharded_solver_converges_with_residual_checks() {
        // Residuals are computed from the global store between blocks;
        // the sharded backend's scatter/gather must keep that store (and
        // z_prev, which the dual residual reads) exact.
        use crate::sharded::ShardedBackend;
        let (g, p) = two_quadratics();
        let problem = AdmmProblem::new(g, p, 1.0, 1.0);
        let mut solver =
            Solver::with_backend(problem, SolverOptions::default(), ShardedBackend::new(2));
        let report = solver.run(1000);
        assert_eq!(report.stop_reason, StopReason::Converged);
        assert!(report.final_residuals.is_some());
        let z = solver.store().z_var(VarId(0));
        assert!((z[0] - 3.0).abs() < 1e-5, "z = {}", z[0]);

        // Block-by-block residuals must match a serial solve exactly.
        let (g2, p2) = two_quadratics();
        let mut serial = Solver::new(g2, p2, SolverOptions::default());
        let serial_report = serial.run(1000);
        assert_eq!(report.iterations, serial_report.iterations);
        let (a, b) = (
            report.final_residuals.unwrap(),
            serial_report.final_residuals.unwrap(),
        );
        assert_eq!(a.primal, b.primal);
        assert_eq!(a.dual, b.dual);
    }

    #[test]
    fn auto_backend_typed_access_reports_selection() {
        use crate::backend::AutoBackend;
        let (g, p) = two_quadratics();
        let problem = AdmmProblem::new(g, p, 1.0, 1.0);
        let mut solver =
            Solver::with_backend(problem, SolverOptions::default(), AutoBackend::new(2));
        assert_eq!(solver.backend().selected(), None);
        let report = solver.run(500);
        assert_eq!(report.stop_reason, StopReason::Converged);
        let selected = solver.backend().selected().expect("probe ran");
        assert!([
            "serial",
            "rayon",
            "barrier",
            "worksteal",
            "sharded",
            "fleet",
            "stale"
        ]
        .contains(&selected));
        assert!(!solver.backend().probe_report().is_empty());
    }

    #[test]
    fn replan_policy_measures_and_keeps_iterates_bit_identical() {
        use crate::plan::ReplanPolicy;
        // Replanning changes scheduling only: a replanning solve must be
        // bit-identical to a frozen one on a synchronous backend.
        let (g, p) = two_quadratics();
        let opts = SolverOptions {
            stopping: StoppingCriteria {
                check_every: 5,
                ..StoppingCriteria::fixed_iterations(60)
            },
            ..SolverOptions::default()
        };
        let mut replanned = Solver::new(g, p, opts);
        replanned.set_replan_policy(ReplanPolicy::new(2, 0.25));
        replanned.run(60);
        let state = replanned.replan_state().expect("policy installed");
        assert!(state.blocks_seen >= 2, "policy must see the blocks");
        assert!(state.baseline.is_some(), "cadence must have measured");
        assert!(
            replanned.problem().plan().is_some(),
            "first measurement installs a plan"
        );

        let (g2, p2) = two_quadratics();
        let mut frozen = Solver::new(g2, p2, opts);
        frozen.run(60);
        assert_eq!(frozen.store().z, replanned.store().z);
        assert_eq!(frozen.store().u, replanned.store().u);
    }

    #[test]
    fn worksteal_solver_converges_and_checkpoints() {
        use crate::backend::WorkStealingBackend;
        let (g, p) = two_quadratics();
        let problem = AdmmProblem::new(g, p, 1.0, 1.0);
        let mut solver = Solver::with_backend(
            problem,
            SolverOptions::default(),
            WorkStealingBackend::new(3),
        );
        solver.run(25);
        let snapshot = solver.save_checkpoint();
        solver.run(25);
        let z_final = solver.store().z.clone();

        let (g2, p2) = two_quadratics();
        let problem2 = AdmmProblem::new(g2, p2, 1.0, 1.0);
        let mut resumed = Solver::with_backend(
            problem2,
            SolverOptions::default(),
            WorkStealingBackend::new(3),
        );
        resumed.load_checkpoint(&snapshot).unwrap();
        resumed.run(25);
        assert_eq!(resumed.store().z, z_final);
    }
}
