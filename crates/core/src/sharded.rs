//! Sharded execution: one persistent worker per partition part, real
//! halo exchange per iteration.
//!
//! The paper's future-work item 3 ("extend the code to allow the use of
//! multiple GPUs and multiple computers") previously existed only as a
//! pricing model (`paradmm-gpusim`'s `MultiDevice`). [`ShardedBackend`]
//! executes it: a [`Partition`] is decomposed into a
//! [`paradmm_graph::ShardedStore`] — per-shard edge-contiguous local
//! stores with local renumbering — and each shard runs the five sweeps
//! on its own arrays with exactly one cross-shard coupling point: the
//! consensus `z` of *halo* variables (those touched by more than one
//! shard).
//!
//! Per iteration, each worker executes the problem's
//! [`crate::SweepPlan`] with the shard-local twist that only `z` couples
//! shards:
//!
//! 1. runs the factor passes (fused x+m under the default plan, separate
//!    x then m under an unfused one), the `z`/`z_prev` buffer swap
//!    ([`paradmm_graph::VarStore::swap_z`] — no snapshot copy), the
//!    z-update for its *interior* variables, and **stages** `ρ·(x+u)`
//!    messages for its halo-incident edges — all on shard-local arrays;
//! 2. *(barrier)* **reduces** an [`assign_range`]-assigned slice of halo
//!    variables: folds the staged messages in ascending **global** edge
//!    order (replaying the serial z-update's exact floating-point
//!    fold — per-shard partial sums would re-associate it) and divides
//!    by the precomputed `Σρ`;
//! 3. *(barrier)* **broadcasts** the combined `z` back into its local
//!    replicas, then runs the plan's edge passes (fused u+n, or u then
//!    n) locally.
//!
//! Two barriers per iteration instead of the fused plan's three (and the
//! seed barrier backend's five): all sweeps except the halo part of z
//! touch only shard-local data, so pass boundaries inside a phase need
//! no synchronization. Iterates are **bit-identical** to
//! [`SerialBackend`](crate::SerialBackend) for any partition and any
//! legal plan, pinned by `tests/backend_equivalence.rs`.
//!
//! The backend counts the bytes its exchange actually moves
//! ([`ShardedBackend::measured_halo_bytes`]); `paradmm-gpusim`'s
//! `MultiDevice` predicts the same quantity from the same
//! [`paradmm_graph::HaloExchangePlan`], making model-vs-measured drift a
//! testable number (see `ablation_sharded`).

use std::sync::Barrier;
use std::time::Instant;

use paradmm_graph::{EdgeParams, FactorId, Partition, Shard, ShardedStore, VarStore};

use crate::backend::SweepExecutor;
use crate::kernels::{self, assign_range, x_update_factor, UpdateKind};
use crate::plan::{PassKind, SweepPlan};
use crate::problem::AdmmProblem;
use crate::timing::UpdateTimings;

/// Raw shared view of the shard array and the combined-z buffer, handed
/// to the per-shard workers.
///
/// # Safety contract
/// Access follows a barrier-separated phase discipline:
///
/// * **local phases** (x/m/interior-z/stage, and broadcast/u/n): worker
///   `i` takes `&mut` to shard `i` only — shards are pairwise disjoint,
///   and nobody reads another worker's shard;
/// * **reduce phase**: no `&mut Shard` exists anywhere (all workers
///   dropped theirs at the preceding barrier); workers take shared `&`
///   views of shards (reading only the staged buffers, written in the
///   previous phase) and disjoint `&mut` ranges of `halo_z` tiled by
///   [`assign_range`];
/// * barriers separate the phases, establishing happens-before edges for
///   all cross-thread visibility (staged writes → reduce reads, reduce
///   writes → broadcast reads).
#[derive(Clone, Copy)]
struct RawShards {
    shards: *mut Shard,
    n_shards: usize,
    halo_z: *mut f64,
    halo_len: usize,
}

unsafe impl Send for RawShards {}
unsafe impl Sync for RawShards {}

impl RawShards {
    /// # Safety
    /// Caller must hold exclusive phase access to shard `i` per the
    /// struct-level contract.
    #[allow(clippy::mut_from_ref)]
    unsafe fn shard_mut(&self, i: usize) -> &mut Shard {
        debug_assert!(i < self.n_shards);
        &mut *self.shards.add(i)
    }

    /// # Safety
    /// Caller must be in a phase where no `&mut` to any shard exists,
    /// per the struct-level contract.
    unsafe fn shard(&self, i: usize) -> &Shard {
        debug_assert!(i < self.n_shards);
        &*self.shards.add(i)
    }

    /// # Safety
    /// `[lo, hi)` must be in-bounds and disjoint from every concurrent
    /// write, per the struct-level contract.
    #[allow(clippy::mut_from_ref)]
    unsafe fn halo_z_range_mut(&self, lo: usize, hi: usize) -> &mut [f64] {
        debug_assert!(lo <= hi && hi <= self.halo_len);
        std::slice::from_raw_parts_mut(self.halo_z.add(lo), hi - lo)
    }

    /// # Safety
    /// No concurrent writes to `halo_z` may exist during this borrow,
    /// per the struct-level contract.
    unsafe fn halo_z_all(&self) -> &[f64] {
        std::slice::from_raw_parts(self.halo_z, self.halo_len)
    }
}

/// Cached decomposition of the last problem this backend executed.
struct ShardedState {
    store: ShardedStore,
    partition: Partition,
    /// Fingerprints for rebuild detection: a same-shaped but differently
    /// wired or weighted problem must not reuse stale shards.
    dims: usize,
    /// Variable count is fingerprinted explicitly — isolated variables
    /// appear in no edge target, so `edge_targets` alone can't see them.
    num_vars: usize,
    edge_targets: Vec<u32>,
    factor_starts: Vec<u32>,
    params: EdgeParams,
}

impl ShardedState {
    fn matches(&self, problem: &AdmmProblem) -> bool {
        let g = problem.graph();
        let p = problem.params();
        self.dims == g.dims()
            && self.num_vars == g.num_vars()
            && self.factor_starts.len() == g.num_factors()
            && self.edge_targets.len() == g.num_edges()
            && self
                .factor_starts
                .iter()
                .enumerate()
                .all(|(a, &s)| g.factor_edge_range(FactorId::from_usize(a)).start == s as usize)
            && self
                .edge_targets
                .iter()
                .enumerate()
                .all(|(e, &v)| g.edge_var(paradmm_graph::EdgeId::from_usize(e)).0 == v)
            && self.params.rho == p.rho
            && self.params.alpha == p.alpha
    }
}

/// Partitioned execution with a real per-iteration halo exchange — the
/// paper's multi-device future-work item run on shard-per-worker threads
/// instead of priced on a model. Bit-identical to
/// [`SerialBackend`](crate::SerialBackend).
pub struct ShardedBackend {
    parts: usize,
    explicit_partition: Option<Partition>,
    state: Option<ShardedState>,
    measured_halo_bytes: u64,
    iterations: usize,
}

impl ShardedBackend {
    /// Backend with `parts` shards, partitioned by
    /// [`Partition::grow`] (BFS region growing) on the first problem it
    /// executes. One worker thread runs per shard.
    ///
    /// # Panics
    /// If `parts == 0`.
    pub fn new(parts: usize) -> Self {
        assert!(parts >= 1, "sharded backend needs at least one shard");
        ShardedBackend {
            parts,
            explicit_partition: None,
            state: None,
            measured_halo_bytes: 0,
            iterations: 0,
        }
    }

    /// Backend over an explicit factor partition (e.g. to compare the
    /// executed exchange against `MultiDevice`'s prediction on the same
    /// split). The partition must cover the problem this backend later
    /// executes.
    ///
    /// # Panics
    /// If the partition has zero parts.
    pub fn with_partition(partition: Partition) -> Self {
        assert!(partition.parts >= 1, "partition needs at least one part");
        ShardedBackend {
            parts: partition.parts,
            explicit_partition: Some(partition),
            state: None,
            measured_halo_bytes: 0,
            iterations: 0,
        }
    }

    /// Number of shards (= worker threads).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The partition in use, once the first block has built the shards.
    pub fn partition(&self) -> Option<&Partition> {
        self.state.as_ref().map(|s| &s.partition)
    }

    /// Exchange bytes one iteration moves, once built — derived from the
    /// same [`paradmm_graph::HaloExchangePlan`] the pricing model reads.
    pub fn halo_bytes_per_iteration(&self) -> Option<usize> {
        self.state
            .as_ref()
            .map(|s| s.store.halo_bytes_per_iteration())
    }

    /// Total bytes the halo exchange has actually moved so far (counted
    /// in the execute loop, not derived from the plan).
    pub fn measured_halo_bytes(&self) -> u64 {
        self.measured_halo_bytes
    }

    /// Iterations executed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    fn ensure_state(&mut self, problem: &AdmmProblem) {
        if self.state.as_ref().is_some_and(|s| s.matches(problem)) {
            return;
        }
        let g = problem.graph();
        let partition = match &self.explicit_partition {
            Some(p) => {
                assert_eq!(
                    p.assignment.len(),
                    g.num_factors(),
                    "explicit partition does not cover this problem"
                );
                p.clone()
            }
            None => Partition::grow(g, self.parts),
        };
        let store = ShardedStore::new(g, problem.params(), &partition);
        self.state = Some(ShardedState {
            store,
            partition,
            dims: g.dims(),
            num_vars: g.num_vars(),
            edge_targets: g.edges().map(|e| g.edge_var(e).0).collect(),
            factor_starts: g
                .factors()
                .map(|a| g.factor_edge_range(a).start as u32)
                .collect(),
            params: problem.params().clone(),
        });
    }
}

impl SweepExecutor for ShardedBackend {
    fn name(&self) -> &'static str {
        "sharded"
    }

    fn execute(
        &mut self,
        problem: &AdmmProblem,
        store: &mut VarStore,
        iters: usize,
        t: &mut UpdateTimings,
    ) {
        if iters == 0 {
            return;
        }
        self.ensure_state(problem);
        let state = self.state.as_mut().expect("ensure_state builds the shards");
        state.store.scatter(store);
        let bytes = run_sharded(problem, &mut state.store, iters, t);
        state.store.gather(store);
        self.measured_halo_bytes += bytes;
        self.iterations += iters;
    }

    fn repartition(&mut self, problem: &AdmmProblem, costs: &crate::timing::SweepCosts) -> bool {
        if self.parts <= 1 {
            return false;
        }
        let g = problem.graph();
        if costs.factor_seconds.len() != g.num_factors() {
            return false;
        }
        // Same per-factor weight the planner's cost-balanced x+m split
        // uses: measured prox seconds + the factor's streaming m share.
        let weights: Vec<f64> = g
            .factors()
            .map(|a| costs.factor_seconds[a.idx()] + g.factor_degree(a) as f64 * costs.m_per_edge)
            .collect();
        let fresh = Partition::grow_weighted(g, self.parts, &weights);
        let changed = match (&self.explicit_partition, &self.state) {
            (Some(p), _) => p.assignment != fresh.assignment,
            (None, Some(s)) => s.partition.assignment != fresh.assignment,
            (None, None) => true,
        };
        if changed {
            self.explicit_partition = Some(fresh);
            self.state = None; // rebuild on the next block
        }
        changed
    }
}

/// Runs `iters` sharded iterations; returns the bytes the halo exchange
/// moved (counted per staged message and per broadcast replica).
fn run_sharded(
    problem: &AdmmProblem,
    sharded: &mut ShardedStore,
    iters: usize,
    t: &mut UpdateTimings,
) -> u64 {
    // The plan's fusion choices apply to the shard-local passes; the
    // phase structure (2 barriers around the halo reduce) is this
    // backend's own.
    let plan = SweepPlan::resolve(problem);
    let xm_fused = plan.passes().iter().any(|p| p.kind() == PassKind::Xm);
    let un_fused = plan.passes().iter().any(|p| p.kind() == PassKind::Un);
    let parts = sharded.parts();
    let (shards, halo_z, reduce) = sharded.exec_parts_mut();
    let n_halo = reduce.len();
    let raw = RawShards {
        shards: shards.as_mut_ptr(),
        n_shards: shards.len(),
        halo_z: halo_z.as_mut_ptr(),
        halo_len: halo_z.len(),
    };
    let barrier = Barrier::new(parts);
    let mut collected = UpdateTimings::new();
    let mut total_bytes = 0u64;

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..parts {
            let barrier = &barrier;
            let reduce = &*reduce;
            handles.push(scope.spawn(move || {
                let mut local = UpdateTimings::new();
                let mut bytes = 0u64;
                // Halo reduction is tiled by the same front-loaded
                // balanced-split helper the barrier backend's static
                // partition uses (see kernels::assign_range).
                let (h_lo, h_hi) = assign_range(n_halo, tid, parts);
                for _ in 0..iters {
                    // Phase 1 — shard-local x, m, snapshot, interior z,
                    // and halo staging. SAFETY: worker `tid` exclusively
                    // borrows shard `tid`; no cross-shard access.
                    let t0 = Instant::now();
                    let (t1, t2) = {
                        let shard = unsafe { raw.shard_mut(tid) };
                        let g = &shard.graph;
                        let params = &shard.params;
                        let d = g.dims();

                        let (t1, t2) = if xm_fused {
                            // Fused local x+m: each factor's prox then
                            // m = x + u for its own contiguous edge block
                            // (same fusion as kernels::xm_update_range,
                            // with the prox fetched via the global id).
                            for (lf, &ga) in shard.factor_global.iter().enumerate() {
                                let fa = FactorId::from_usize(lf);
                                let er = g.factor_edge_range(fa);
                                let (flo, fhi) = (er.start * d, er.end * d);
                                x_update_factor(
                                    g,
                                    problem.prox(ga),
                                    params,
                                    &shard.store.n,
                                    &mut shard.store.x[flo..fhi],
                                    fa,
                                );
                                for j in flo..fhi {
                                    shard.store.m[j] = shard.store.x[j] + shard.store.u[j];
                                }
                            }
                            let t1 = Instant::now();
                            (t1, t1)
                        } else {
                            for (lf, &ga) in shard.factor_global.iter().enumerate() {
                                let fa = FactorId::from_usize(lf);
                                let er = g.factor_edge_range(fa);
                                x_update_factor(
                                    g,
                                    problem.prox(ga),
                                    params,
                                    &shard.store.n,
                                    &mut shard.store.x[er.start * d..er.end * d],
                                    fa,
                                );
                            }
                            let t1 = Instant::now();

                            let flat = g.num_edges() * d;
                            kernels::m_update_range(
                                &shard.store.x,
                                &shard.store.u,
                                &mut shard.store.m,
                                0,
                                flat,
                            );
                            (t1, Instant::now())
                        };

                        // Buffer swap in place of the z_prev snapshot
                        // copy: every shard-local variable is rewritten
                        // below (interior here, halo replicas at the
                        // broadcast), so no stale value survives.
                        shard.store.swap_z();
                        for &lv in &shard.interior_vars {
                            let lo = lv as usize * d;
                            kernels::z_update_var(
                                g,
                                params,
                                &shard.store.m,
                                &mut shard.store.z[lo..lo + d],
                                paradmm_graph::VarId(lv),
                            );
                        }
                        // Stage ρ·m for halo-incident edges — the gather
                        // half of the exchange.
                        for (slot, &le) in shard.stage_edges.iter().enumerate() {
                            let rho = shard.params.rho[le as usize];
                            let lo = le as usize * d;
                            for c in 0..d {
                                shard.stage[slot * d + c] = rho * shard.store.m[lo + c];
                            }
                        }
                        bytes += 8 * shard.stage.len() as u64;
                        (t1, t2)
                    }; // &mut Shard dropped before the barrier
                    barrier.wait();

                    // Phase 2 — reduce this worker's halo slice. SAFETY:
                    // no &mut Shard exists (all dropped at the barrier);
                    // staged buffers are read-only this phase, and the
                    // assign_range tiles of halo_z are pairwise disjoint.
                    {
                        let d = problem.graph().dims();
                        for h in h_lo..h_hi {
                            let task = &reduce[h];
                            let zb = unsafe { raw.halo_z_range_mut(h * d, (h + 1) * d) };
                            zb.fill(0.0);
                            for &(s, slot) in &task.contribs {
                                let stage = unsafe { &raw.shard(s as usize).stage };
                                let lo = slot as usize * d;
                                for c in 0..d {
                                    zb[c] += stage[lo + c];
                                }
                            }
                            let inv = 1.0 / task.rho_sum;
                            for v in zb.iter_mut() {
                                *v *= inv;
                            }
                        }
                    }
                    barrier.wait();

                    // Phase 3 — broadcast combined z into local replicas,
                    // then the fused u+n sweep. SAFETY: worker `tid`
                    // mut-borrows only shard `tid`; halo_z is read-only
                    // this phase (reduce writes finished at the barrier).
                    {
                        let shard = unsafe { raw.shard_mut(tid) };
                        let g = &shard.graph;
                        let d = g.dims();
                        let halo_all = unsafe { raw.halo_z_all() };
                        for &(lv, h) in &shard.halo_in {
                            let lo = lv as usize * d;
                            let ho = h as usize * d;
                            shard.store.z[lo..lo + d].copy_from_slice(&halo_all[ho..ho + d]);
                        }
                        bytes += 8 * (shard.halo_in.len() * d) as u64;
                        let t3 = Instant::now();
                        // t4 marks the end of the u work: the whole fused
                        // u+n pass, or just the u sweep when unfused.
                        let t4 = if un_fused {
                            kernels::un_update_range(
                                g,
                                &shard.params,
                                &shard.store.x,
                                &shard.store.z,
                                &mut shard.store.u,
                                &mut shard.store.n,
                                0,
                                g.num_edges(),
                            );
                            Instant::now()
                        } else {
                            kernels::u_update_range(
                                g,
                                &shard.params,
                                &shard.store.x,
                                &shard.store.z,
                                &mut shard.store.u,
                                0,
                                g.num_edges(),
                            );
                            let t4 = Instant::now();
                            kernels::n_update_range(
                                g,
                                &shard.store.z,
                                &shard.store.u,
                                &mut shard.store.n,
                                0,
                                g.num_edges(),
                            );
                            t4
                        };
                        if tid == 0 {
                            local.add(UpdateKind::X, t1 - t0);
                            local.add(UpdateKind::M, t2 - t1);
                            // Interior z + stage + exchange, inseparable.
                            local.add(UpdateKind::Z, t3 - t2);
                            // Fused u+n goes under U like every fused
                            // pass; an unfused plan splits U and N.
                            local.add(UpdateKind::U, t4 - t3);
                            if !un_fused {
                                local.add(UpdateKind::N, t4.elapsed());
                            }
                        }
                    }
                }
                (local, bytes)
            }));
        }
        for h in handles {
            let (local, bytes) = h.join().expect("sharded worker panicked");
            collected.merge(&local);
            total_bytes += bytes;
        }
    });
    collected.iterations = 0; // accounted centrally by run_block
    t.merge(&collected);
    total_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SerialBackend;
    use paradmm_graph::GraphBuilder;
    use paradmm_prox::{ProxOp, QuadraticProx};

    /// Chain of `n` pairwise quadratic factors — splits with a tiny halo.
    fn chain_problem(n: usize) -> AdmmProblem {
        let mut b = GraphBuilder::new(2);
        let vs = b.add_vars(n + 1);
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for i in 0..n {
            b.add_factor(&[vs[i], vs[i + 1]]);
            let t = (i as f64 * 0.23).sin();
            proxes.push(Box::new(QuadraticProx::isotropic(4, 1.0, &[t, -t, t, -t])));
        }
        AdmmProblem::new(b.build(), proxes, 1.2, 0.9)
    }

    /// All-pairs problem — every variable is halo under any real split.
    fn dense_problem(n: usize) -> AdmmProblem {
        let mut b = GraphBuilder::new(1);
        let vs = b.add_vars(n);
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                b.add_factor(&[vs[i], vs[j]]);
                proxes.push(Box::new(QuadraticProx::isotropic(
                    2,
                    1.0,
                    &[i as f64 * 0.1, j as f64 * 0.1],
                )));
            }
        }
        AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
    }

    fn run(problem: &AdmmProblem, backend: &mut dyn SweepExecutor, iters: usize) -> VarStore {
        let mut store = VarStore::zeros(problem.graph());
        for (i, v) in store.n.iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin();
        }
        for (i, v) in store.z.iter_mut().enumerate() {
            *v = (i as f64 * 0.11).cos();
        }
        store.snapshot_z();
        let mut t = UpdateTimings::new();
        backend.run_block(problem, &mut store, iters, &mut t);
        store
    }

    #[test]
    fn bit_identical_to_serial_on_chain() {
        let problem = chain_problem(23);
        let serial = run(&problem, &mut SerialBackend, 40);
        for parts in [1usize, 2, 3, 4] {
            let mut sb = ShardedBackend::new(parts);
            let got = run(&problem, &mut sb, 40);
            assert_eq!(serial.z, got.z, "parts={parts} z diverged");
            assert_eq!(serial.x, got.x, "parts={parts} x diverged");
            assert_eq!(serial.u, got.u, "parts={parts} u diverged");
            assert_eq!(serial.n, got.n, "parts={parts} n diverged");
            assert_eq!(serial.z_prev, got.z_prev, "parts={parts} z_prev diverged");
        }
    }

    #[test]
    fn bit_identical_on_dense_graph_with_contiguous_partition() {
        // Contiguous splits interleave a variable's edges across shards —
        // the ordered reduce must still replay the serial fold exactly.
        let problem = dense_problem(9);
        let serial = run(&problem, &mut SerialBackend, 30);
        for parts in [2usize, 4] {
            let partition = Partition::contiguous(problem.graph(), parts);
            let mut sb = ShardedBackend::with_partition(partition);
            let got = run(&problem, &mut sb, 30);
            assert_eq!(serial.z, got.z, "parts={parts}");
            assert_eq!(serial.u, got.u, "parts={parts}");
        }
    }

    #[test]
    fn more_shards_than_halo_vars_front_loads_reduce() {
        // 4 shards on a short chain: fewer halo variables than workers,
        // so assign_range hands trailing workers empty reduce ranges —
        // the same front-loaded-split regression PR 2 pinned for the
        // barrier backend, now covering the sharded call site.
        let problem = chain_problem(8);
        let serial = run(&problem, &mut SerialBackend, 25);
        let mut sb = ShardedBackend::new(4);
        let got = run(&problem, &mut sb, 25);
        let halo = sb
            .partition()
            .map(|p| p.halo_vars(problem.graph()).len())
            .unwrap();
        assert!(halo < 4, "test needs fewer halo vars than shards");
        assert_eq!(serial.z, got.z);
        assert_eq!(serial.u, got.u);
    }

    #[test]
    fn measured_bytes_match_plan() {
        let problem = chain_problem(40);
        let mut sb = ShardedBackend::new(4);
        let mut store = VarStore::zeros(problem.graph());
        let mut t = UpdateTimings::new();
        sb.run_block(&problem, &mut store, 17, &mut t);
        let per_iter = sb.halo_bytes_per_iteration().unwrap();
        assert!(per_iter > 0, "a 4-way chain split has a halo");
        assert_eq!(sb.measured_halo_bytes(), 17 * per_iter as u64);
        assert_eq!(sb.iterations(), 17);
    }

    #[test]
    fn single_shard_moves_no_bytes() {
        let problem = chain_problem(10);
        let mut sb = ShardedBackend::new(1);
        let mut store = VarStore::zeros(problem.graph());
        let mut t = UpdateTimings::new();
        sb.run_block(&problem, &mut store, 5, &mut t);
        assert_eq!(sb.measured_halo_bytes(), 0);
        assert_eq!(sb.halo_bytes_per_iteration(), Some(0));
    }

    #[test]
    fn rebuilds_when_problem_changes() {
        let a = chain_problem(10);
        let b = chain_problem(16);
        let mut sb = ShardedBackend::new(2);
        let got_a = run(&a, &mut sb, 20);
        let serial_a = run(&a, &mut SerialBackend, 20);
        assert_eq!(got_a.z, serial_a.z);
        // Different problem through the same backend: must rebuild, not
        // assert or corrupt.
        let got_b = run(&b, &mut sb, 20);
        let serial_b = run(&b, &mut SerialBackend, 20);
        assert_eq!(got_b.z, serial_b.z);
    }

    #[test]
    fn rebuilds_when_isolated_vars_are_added() {
        // Same factors, edges and params — but one extra degree-0
        // variable. Isolated variables appear in no edge target, so the
        // fingerprint must check the variable count explicitly; a stale
        // decomposition would trip scatter's shape assert instead of
        // rebuilding.
        let build = |extra_isolated: bool| {
            let mut b = GraphBuilder::new(2);
            let vs = b.add_vars(4);
            if extra_isolated {
                let _lonely = b.add_var();
            }
            let proxes: Vec<Box<dyn ProxOp>> = (0..3)
                .map(|i| {
                    Box::new(QuadraticProx::isotropic(4, 1.0, &[i as f64; 4])) as Box<dyn ProxOp>
                })
                .collect();
            for i in 0..3 {
                b.add_factor(&[vs[i], vs[i + 1]]);
            }
            AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
        };
        let a = build(false);
        let b = build(true);
        let mut sb = ShardedBackend::new(2);
        let _ = run(&a, &mut sb, 10);
        let got = run(&b, &mut sb, 10);
        let serial = run(&b, &mut SerialBackend, 10);
        assert_eq!(got.z, serial.z);
        assert_eq!(got.z_prev, serial.z_prev, "orphan z_prev snapshot");
    }

    #[test]
    fn rebuilds_when_params_change() {
        let mut a = chain_problem(10);
        let mut sb = ShardedBackend::new(2);
        let before = run(&a, &mut sb, 15);
        a.params_mut().scale_rho(3.0);
        let serial = run(&a, &mut SerialBackend, 15);
        let after = run(&a, &mut sb, 15);
        assert_eq!(after.z, serial.z, "stale rho must not survive a rebuild");
        assert_ne!(before.z, after.z, "rho change must alter iterates");
    }

    #[test]
    fn blocks_resume_bit_identically() {
        // Scatter/gather at block boundaries must be lossless: many small
        // blocks equal one big serial run.
        let problem = chain_problem(12);
        let mut sb = ShardedBackend::new(3);
        let mut sharded_store = VarStore::zeros(problem.graph());
        let mut serial_store = VarStore::zeros(problem.graph());
        let mut t = UpdateTimings::new();
        for block in [1usize, 4, 2, 7] {
            sb.run_block(&problem, &mut sharded_store, block, &mut t);
            SerialBackend.run_block(&problem, &mut serial_store, block, &mut t);
            assert_eq!(serial_store.z, sharded_store.z, "after block {block}");
            assert_eq!(serial_store.n, sharded_store.n, "after block {block}");
        }
    }

    #[test]
    fn zero_iterations_is_a_no_op() {
        let problem = chain_problem(5);
        let mut sb = ShardedBackend::new(2);
        let mut store = VarStore::zeros(problem.graph());
        store.z.fill(2.5);
        let before = store.clone();
        let mut t = UpdateTimings::new();
        sb.run_block(&problem, &mut store, 0, &mut t);
        assert_eq!(store.z, before.z);
        assert!(sb.partition().is_none(), "no build without iterations");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_parts_rejected() {
        let _ = ShardedBackend::new(0);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(ShardedBackend::new(2).name(), "sharded");
    }
}
