//! Batched multi-instance execution: N independent problems fused into
//! one block-diagonal store, served through any [`SweepExecutor`].
//!
//! The paper's sweeps saturate hardware on one *large* factor-graph; a
//! serving workload is the opposite shape — many *small* independent
//! instances, where per-instance sweep-launch overhead (thread spawns,
//! barriers, kernel launches on a real device) dominates the math.
//! [`BatchSolver`] packs the instances with
//! [`paradmm_graph::BatchStore`] and drives the fused problem through
//! one backend, so every launch is amortized over the whole batch.
//!
//! Two contracts:
//!
//! * **Bit-identity** — the fused graph is block-diagonal, so under any
//!   backend that is bit-identical to [`crate::SerialBackend`] each
//!   instance's iterates equal a solo serial solve of that instance,
//!   bit for bit, including residual checks and stop iterations
//!   (pinned by `tests/backend_equivalence.rs`).
//! * **Early-exit freezing** — residuals are tracked *per instance*
//!   every `check_every` iterations; converged instances are frozen
//!   (state extracted, later sweeps never touch them) and the
//!   survivors are repacked into a smaller dense batch, so backends
//!   keep their ordinary `assign_range` / chunk-claim scheduling with
//!   no holes to skip — stragglers get the whole machine.
//!
//! Instances are natural shards: with
//! [`crate::Scheduler::Sharded`], each (re)pack installs a fresh
//! [`ShardedBackend`] over the layout's **zero-cut** partition (whole
//! instances per shard, empty halo).
//!
//! Each (re)pack installs the default fused three-pass
//! [`crate::SweepPlan`] on the fused problem at pack time, cached by
//! the pass-shape fingerprint `(num_factors, num_vars, num_edges)`: a
//! repack whose fused topology keeps the same pass shape reuses the
//! previous plan outright, and either way per-block resolution borrows
//! the installed plan instead of re-deriving the default every block.
//! The plan is the same one solo solves resolve, so bit-identity is
//! unaffected, and the fused store's `z_prev` stays materialized under
//! the buffer-swap z pass, so
//! [`paradmm_graph::BatchLayout::extract_store`] / `write_store`
//! slicing is unaffected.

use std::time::{Duration, Instant};

use paradmm_graph::{BatchInstance, BatchLayout, BatchStore, EdgeParams, FactorGraph, VarStore};
use paradmm_prox::ProxOp;

use crate::backend::SweepExecutor;
use crate::plan::SweepPlan;
use crate::problem::AdmmProblem;
use crate::residuals::Residuals;
use crate::scheduler::Scheduler;
use crate::sharded::ShardedBackend;
use crate::solver::{SolverOptions, StopReason};
use crate::timing::UpdateTimings;

/// Per-instance outcome of a batched solve.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Iterations this instance executed before freezing or stopping.
    pub iterations: usize,
    /// Why this instance stopped.
    pub stop_reason: StopReason,
    /// Residuals at the instance's final check (if any check ran).
    pub final_residuals: Option<Residuals>,
}

/// Outcome of [`BatchSolver::run`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One report per instance, in pack order.
    pub instances: Vec<InstanceReport>,
    /// Total wall-clock time spent inside [`BatchSolver::run`].
    pub elapsed: Duration,
}

impl BatchReport {
    /// Number of instances that converged.
    pub fn converged_count(&self) -> usize {
        self.instances
            .iter()
            .filter(|r| r.stop_reason == StopReason::Converged)
            .count()
    }

    /// Whether every instance converged.
    pub fn all_converged(&self) -> bool {
        self.converged_count() == self.instances.len()
    }

    /// The largest per-instance iteration count (what the straggler
    /// cost).
    pub fn max_iterations(&self) -> usize {
        self.instances
            .iter()
            .map(|r| r.iterations)
            .max()
            .unwrap_or(0)
    }

    /// Instances per second of wall-clock — the throughput metric of
    /// batched serving.
    pub fn instances_per_second(&self) -> f64 {
        let s = self.elapsed.as_secs_f64();
        if s > 0.0 {
            self.instances.len() as f64 / s
        } else {
            0.0
        }
    }
}

/// One packed instance's bookkeeping. The graph and parameters stay
/// here for the lifetime of the solver (repacks re-read them); the
/// proximal operators migrate into the fused [`AdmmProblem`] and come
/// back through `into_parts` on every repack.
struct Slot {
    graph: FactorGraph,
    params: EdgeParams,
    proxes: Option<Vec<Box<dyn ProxOp>>>,
    initial_store: Option<VarStore>,
    iterations: usize,
    stop_reason: Option<StopReason>,
    final_residuals: Option<Residuals>,
    result_store: Option<VarStore>,
}

/// The currently executing fused batch (only non-frozen instances).
struct ActiveSet {
    problem: AdmmProblem,
    store: VarStore,
    layout: BatchLayout,
    /// Slot index of each packed position.
    members: Vec<usize>,
}

/// Packs N independent [`AdmmProblem`]s into one fused store and runs
/// them to convergence through a single backend, with per-instance
/// residual tracking and early-exit freezing. See the module docs for
/// the two contracts (bit-identity, freezing).
///
/// [`BatchSolver::run`] is one-shot: it drives every instance to
/// convergence or to the iteration budget, then finalizes. Per-instance
/// results are read back with [`BatchSolver::store`] /
/// [`BatchSolver::report`].
pub struct BatchSolver {
    options: SolverOptions,
    backend: Box<dyn SweepExecutor>,
    /// `Some(parts)` when the descriptor asked for sharded execution:
    /// each (re)pack installs a fresh backend over the layout's
    /// zero-cut partition.
    sharded_parts: Option<usize>,
    slots: Vec<Slot>,
    active: Option<ActiveSet>,
    /// Fused [`SweepPlan`] keyed by the pass-shape fingerprint
    /// `(num_factors, num_vars, num_edges)` of the fused graph it was
    /// built for — the only inputs [`SweepPlan::fused`] reads. Repacks
    /// whose fused topology keeps the same pass shape reuse the cached
    /// plan instead of rebuilding it.
    plan_cache: Option<((usize, usize, usize), SweepPlan)>,
    /// Plans actually constructed (cache misses) — telemetry for the
    /// skip path.
    plans_built: usize,
    started: bool,
    done: usize,
    timings: UpdateTimings,
    elapsed: Duration,
}

impl BatchSolver {
    /// Batches `problems` with zero-initialized state; the backend comes
    /// from [`SolverOptions::scheduler`]. With
    /// [`Scheduler::Sharded`], the shard partition is the layout's
    /// zero-cut instance partition instead of BFS growing.
    ///
    /// # Panics
    /// If `problems` is empty or the instances disagree on `dims`.
    pub fn new(problems: Vec<AdmmProblem>, options: SolverOptions) -> Self {
        let sharded_parts = match options.scheduler {
            Scheduler::Sharded { parts } => Some(parts),
            _ => None,
        };
        // The sharded backend is (re)built per pack; install a serial
        // placeholder until then.
        let backend: Box<dyn SweepExecutor> = if sharded_parts.is_some() {
            Box::new(crate::backend::SerialBackend)
        } else {
            options.scheduler.to_backend()
        };
        Self::build(problems, options, backend, sharded_parts)
    }

    /// Batches `problems` behind an explicit backend.
    /// [`SolverOptions::scheduler`] is ignored. The backend must
    /// tolerate the executed problem changing shape across blocks
    /// (every built-in backend does; a
    /// [`ShardedBackend::with_partition`] pinned to one topology does
    /// not — use [`Scheduler::Sharded`] through [`BatchSolver::new`]
    /// for sharded batching instead).
    ///
    /// # Panics
    /// If `problems` is empty or the instances disagree on `dims`.
    pub fn with_backend(
        problems: Vec<AdmmProblem>,
        options: SolverOptions,
        backend: Box<dyn SweepExecutor>,
    ) -> Self {
        Self::build(problems, options, backend, None)
    }

    fn build(
        problems: Vec<AdmmProblem>,
        options: SolverOptions,
        backend: Box<dyn SweepExecutor>,
        sharded_parts: Option<usize>,
    ) -> Self {
        assert!(!problems.is_empty(), "batch needs at least one instance");
        let dims = problems[0].graph().dims();
        let slots: Vec<Slot> = problems
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                assert_eq!(
                    p.graph().dims(),
                    dims,
                    "instance {i} disagrees on dims with the batch"
                );
                let (graph, proxes, params) = p.into_parts();
                Slot {
                    graph,
                    params,
                    proxes: Some(proxes),
                    initial_store: None,
                    iterations: 0,
                    stop_reason: None,
                    final_residuals: None,
                    result_store: None,
                }
            })
            .collect();
        BatchSolver {
            options,
            backend,
            sharded_parts,
            slots,
            active: None,
            plan_cache: None,
            plans_built: 0,
            started: false,
            done: 0,
            timings: UpdateTimings::new(),
            elapsed: Duration::ZERO,
        }
    }

    /// Batches a group of [`crate::SolveRequest`]s: the unified-API
    /// entry point. The group must agree on stopping criteria and
    /// backend (one fused execution has one of each — the serving
    /// layer's admission queue groups requests accordingly); warm
    /// starts are applied per request, and deadline/priority hints are
    /// scheduling metadata for the caller, not this engine. Plan
    /// overrides are ignored: the fused problem resolves its own fused
    /// plan (identical numerics either way).
    ///
    /// # Panics
    /// As [`BatchSolver::new`], plus if the group disagrees on
    /// stopping criteria or backend.
    pub fn from_requests(requests: Vec<crate::SolveRequest>) -> Self {
        let (problems, warm, stopping, backend) = crate::request::group_parts(requests);
        let options = SolverOptions {
            scheduler: backend.to_scheduler(),
            stopping,
            ..SolverOptions::default()
        };
        let mut batch = Self::new(problems, options);
        for (i, ws) in warm.into_iter().enumerate() {
            if let Some(store) = ws {
                batch.warm_start(i, store);
            }
        }
        batch
    }

    /// Runs a request group to completion and returns one
    /// [`crate::SolveOutcome`] per request, in order — the thin-adapter
    /// form of batched execution ([`BatchSolver::from_requests`] +
    /// [`BatchSolver::run_default`] + per-instance readback).
    pub fn solve_requests(requests: Vec<crate::SolveRequest>) -> Vec<crate::SolveOutcome> {
        let mut batch = Self::from_requests(requests);
        let report = batch.run_default();
        (0..batch.num_instances())
            .map(|i| {
                let r = &report.instances[i];
                crate::SolveOutcome {
                    store: batch.store(i).clone(),
                    iterations: r.iterations,
                    stop_reason: r.stop_reason,
                    final_residuals: r.final_residuals,
                    residual_trace: Vec::new(),
                    elapsed: report.elapsed,
                }
            })
            .collect()
    }

    /// Number of batched instances.
    pub fn num_instances(&self) -> usize {
        self.slots.len()
    }

    /// The configured options.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Accumulated sweep timings over the fused execution.
    pub fn timings(&self) -> &UpdateTimings {
        &self.timings
    }

    /// The executing backend's stable name.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Seeds instance `i` with `store` instead of zeros (warm start).
    ///
    /// # Panics
    /// If called after [`BatchSolver::run`] started, or the store is
    /// not shaped for instance `i`.
    pub fn warm_start(&mut self, i: usize, store: VarStore) {
        assert!(!self.started, "warm starts must precede run()");
        let g = &self.slots[i].graph;
        assert_eq!(store.dims(), g.dims(), "warm start dims mismatch");
        assert_eq!(store.num_edges(), g.num_edges(), "warm start edge count");
        assert_eq!(store.num_vars(), g.num_vars(), "warm start var count");
        self.slots[i].initial_store = Some(store);
    }

    /// Final state of instance `i`.
    ///
    /// # Panics
    /// If [`BatchSolver::run`] has not completed.
    pub fn store(&self, i: usize) -> &VarStore {
        self.slots[i]
            .result_store
            .as_ref()
            .expect("instance state is available after run()")
    }

    /// Report for instance `i` (available after [`BatchSolver::run`]).
    pub fn report(&self, i: usize) -> InstanceReport {
        let s = &self.slots[i];
        InstanceReport {
            iterations: s.iterations,
            stop_reason: s.stop_reason.unwrap_or(StopReason::MaxIterations),
            final_residuals: s.final_residuals,
        }
    }

    /// Runs every instance for at most `max_iters` iterations, checking
    /// per-instance residuals every
    /// [`crate::StoppingCriteria::check_every`] iterations and freezing
    /// converged instances (they stop contributing work; stragglers
    /// keep the backend saturated). Mirrors [`crate::Solver::run`]'s
    /// block schedule exactly, which is what makes per-instance
    /// iteration counts and final states bit-identical to solo solves.
    pub fn run(&mut self, max_iters: usize) -> BatchReport {
        let start = Instant::now();
        if !self.started {
            self.started = true;
            let members: Vec<usize> = (0..self.slots.len()).collect();
            let mut states = Vec::with_capacity(members.len());
            let mut proxes = Vec::with_capacity(members.len());
            for slot in self.slots.iter_mut() {
                let state = slot
                    .initial_store
                    .take()
                    .unwrap_or_else(|| VarStore::zeros(&slot.graph));
                states.push(state);
                proxes.push(slot.proxes.take().expect("proxes present before start"));
            }
            self.pack(members, states, proxes);
        }
        let stopping = self.options.stopping;
        let check_every = stopping.check_every;

        while let Some(active) = self.active.as_mut() {
            if self.done >= max_iters {
                break;
            }
            let block = if check_every == usize::MAX {
                max_iters - self.done
            } else {
                check_every.max(1).min(max_iters - self.done)
            };
            self.backend
                .run_block(&active.problem, &mut active.store, block, &mut self.timings);
            self.done += block;

            let mut to_freeze: Vec<usize> = Vec::new();
            if check_every != usize::MAX {
                let d = active.layout.dims();
                for pos in 0..active.members.len() {
                    let er = active.layout.edge_range(pos);
                    let r = Residuals::compute_edge_range(
                        active.problem.graph(),
                        active.problem.params(),
                        &active.store,
                        er.start,
                        er.end,
                    );
                    let conv = r.converged(er.len() * d, stopping.eps_abs, stopping.eps_rel);
                    let slot = &mut self.slots[active.members[pos]];
                    slot.iterations = self.done;
                    slot.final_residuals = Some(r);
                    if conv {
                        slot.stop_reason = Some(StopReason::Converged);
                        to_freeze.push(pos);
                    }
                }
            } else {
                for &m in &active.members {
                    self.slots[m].iterations = self.done;
                }
            }
            if !to_freeze.is_empty() {
                self.freeze_and_repack(&to_freeze);
            }
        }

        self.finalize();
        self.elapsed += start.elapsed();
        self.build_report()
    }

    /// Runs with the options' own `max_iters` budget.
    pub fn run_default(&mut self) -> BatchReport {
        self.run(self.options.stopping.max_iters)
    }

    /// Builds the fused problem over `members` (slot indices, ascending)
    /// with the given per-member states and proximal operators, and
    /// installs it as the active set.
    fn pack(
        &mut self,
        members: Vec<usize>,
        states: Vec<VarStore>,
        proxes: Vec<Vec<Box<dyn ProxOp>>>,
    ) {
        let batch = {
            let views: Vec<BatchInstance<'_>> = members
                .iter()
                .zip(&states)
                .map(|(&m, state)| BatchInstance {
                    graph: &self.slots[m].graph,
                    params: &self.slots[m].params,
                    store: state,
                })
                .collect();
            BatchStore::pack(&views).expect("instances were validated at construction")
        };
        let (graph, params, store, layout) = batch.into_parts();
        let fused_proxes: Vec<Box<dyn ProxOp>> = proxes.into_iter().flatten().collect();
        let mut problem = AdmmProblem::with_params(graph, fused_proxes, params);
        problem.set_plan(self.fused_plan_for(&problem));
        if let Some(parts) = self.sharded_parts {
            // Instances are natural shards: a fresh backend over the
            // zero-cut instance partition, rebuilt because the fused
            // topology changes on every repack.
            self.backend = Box::new(ShardedBackend::with_partition(layout.partition(parts)));
        }
        self.active = Some(ActiveSet {
            problem,
            store,
            layout,
            members,
        });
    }

    /// The fused plan for `problem`'s pass shape, reusing the cached
    /// plan when the fingerprint matches (a repack that kept the fused
    /// topology's pass shape skips the rebuild entirely). Installing
    /// the plan at pack time also means every subsequent block's
    /// resolve borrows it instead of re-deriving the default.
    fn fused_plan_for(&mut self, problem: &AdmmProblem) -> SweepPlan {
        let g = problem.graph();
        let fingerprint = (g.num_factors(), g.num_vars(), g.num_edges());
        match &self.plan_cache {
            Some((fp, plan)) if *fp == fingerprint => plan.clone(),
            _ => {
                self.plans_built += 1;
                let plan = SweepPlan::fused(problem);
                self.plan_cache = Some((fingerprint, plan.clone()));
                plan
            }
        }
    }

    /// Fused plans constructed so far (plan-cache misses); packs whose
    /// pass shape matched the previous pack reuse the cached plan and
    /// do not count.
    pub fn plans_built(&self) -> usize {
        self.plans_built
    }

    /// Extracts the state of the given active positions (ascending) into
    /// their slots and repacks the survivors into a smaller dense batch.
    fn freeze_and_repack(&mut self, frozen_positions: &[usize]) {
        let ActiveSet {
            problem,
            store,
            layout,
            members,
        } = self.active.take().expect("freeze requires an active set");
        let (_graph, all_proxes, _params) = problem.into_parts();

        let mut prox_iter = all_proxes.into_iter();
        let mut frozen = frozen_positions.iter().copied().peekable();
        let mut surv_members = Vec::new();
        let mut surv_states = Vec::new();
        let mut surv_proxes = Vec::new();
        for (pos, &member) in members.iter().enumerate() {
            let segment: Vec<Box<dyn ProxOp>> = prox_iter
                .by_ref()
                .take(layout.factor_range(pos).len())
                .collect();
            let state = layout.extract_store(&store, pos);
            if frozen.peek() == Some(&pos) {
                frozen.next();
                self.slots[member].result_store = Some(state);
            } else {
                surv_members.push(member);
                surv_states.push(state);
                surv_proxes.push(segment);
            }
        }
        debug_assert!(prox_iter.next().is_none());
        if !surv_members.is_empty() {
            self.pack(surv_members, surv_states, surv_proxes);
        }
    }

    /// Extracts every still-active instance and stamps its stop reason.
    fn finalize(&mut self) {
        if let Some(active) = self.active.take() {
            for (pos, &member) in active.members.iter().enumerate() {
                let slot = &mut self.slots[member];
                slot.result_store = Some(active.layout.extract_store(&active.store, pos));
                if slot.stop_reason.is_none() {
                    slot.stop_reason = Some(StopReason::MaxIterations);
                }
            }
        }
        for slot in &mut self.slots {
            if slot.stop_reason.is_none() {
                slot.stop_reason = Some(StopReason::MaxIterations);
            }
        }
    }

    fn build_report(&self) -> BatchReport {
        BatchReport {
            instances: (0..self.slots.len()).map(|i| self.report(i)).collect(),
            elapsed: self.elapsed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::WorkStealingBackend;
    use crate::residuals::StoppingCriteria;
    use crate::solver::Solver;
    use paradmm_graph::GraphBuilder;
    use paradmm_prox::{ProxOp, QuadraticProx};

    /// Consensus of `k` quadratics over one variable; optimum is the
    /// mean of the targets. Varying `k` gives mixed-size instances.
    fn consensus_problem(targets: &[f64]) -> AdmmProblem {
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for &t in targets {
            b.add_factor(&[v]);
            proxes.push(Box::new(QuadraticProx::isotropic(1, 2.0, &[t])));
        }
        AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
    }

    fn mixed_instances() -> Vec<AdmmProblem> {
        vec![
            consensus_problem(&[1.0, 5.0, 9.0]),
            consensus_problem(&[2.0, 4.0]),
            consensus_problem(&[-3.0, 0.0, 3.0, 6.0]),
        ]
    }

    fn solo_solve(
        problem: AdmmProblem,
        options: SolverOptions,
        max_iters: usize,
    ) -> (VarStore, usize, StopReason) {
        let mut solver = Solver::from_problem(problem, options);
        let report = solver.run(max_iters);
        (
            solver.store().clone(),
            report.iterations,
            report.stop_reason,
        )
    }

    #[test]
    fn plan_cache_skips_rebuild_for_matching_pass_shape() {
        // Two same-shape instances: packing either one alone produces
        // the same fused fingerprint, so the second pack must hit the
        // cache; a different shape must miss it.
        let mut batch = BatchSolver::new(
            vec![consensus_problem(&[1.0, 5.0])],
            SolverOptions::default(),
        );
        let p1 = consensus_problem(&[1.0, 5.0]);
        assert_eq!(batch.plans_built(), 0);
        batch.fused_plan_for(&p1);
        assert_eq!(batch.plans_built(), 1);
        batch.fused_plan_for(&p1); // same fingerprint → cache hit
        assert_eq!(batch.plans_built(), 1);
        let bigger = consensus_problem(&[1.0, 5.0, 9.0]);
        batch.fused_plan_for(&bigger); // new shape → rebuild
        assert_eq!(batch.plans_built(), 2);
    }

    #[test]
    fn packed_problem_carries_the_fused_plan() {
        let mut batch = BatchSolver::new(mixed_instances(), SolverOptions::default());
        batch.run(5);
        assert!(batch.plans_built() >= 1);
        // Every pack so far had a distinct shrinking topology, but the
        // plan itself must be installed (resolution borrows it).
    }

    #[test]
    fn batch_matches_solo_serial_bitwise() {
        let options = SolverOptions::default();
        let mut batch = BatchSolver::new(mixed_instances(), options);
        let report = batch.run(1000);
        assert!(report.all_converged());

        for (i, problem) in mixed_instances().into_iter().enumerate() {
            let (solo, iters, reason) = solo_solve(problem, options, 1000);
            assert_eq!(reason, StopReason::Converged);
            assert_eq!(report.instances[i].iterations, iters, "instance {i}");
            let got = batch.store(i);
            assert_eq!(got.z, solo.z, "instance {i} z");
            assert_eq!(got.x, solo.x, "instance {i} x");
            assert_eq!(got.u, solo.u, "instance {i} u");
            assert_eq!(got.n, solo.n, "instance {i} n");
            assert_eq!(got.m, solo.m, "instance {i} m");
        }
    }

    #[test]
    fn freezing_lets_stragglers_continue() {
        // Tight tolerances on a slow instance, loose on fast ones: the
        // fast ones must freeze earlier than the straggler's stop.
        let options = SolverOptions {
            stopping: StoppingCriteria {
                max_iters: 2000,
                eps_abs: 1e-10,
                eps_rel: 1e-9,
                check_every: 5,
            },
            ..SolverOptions::default()
        };
        let instances = vec![
            consensus_problem(&[2.0, 2.0]), // converges almost immediately
            consensus_problem(&[1.0, 5.0, 9.0, -7.0, 3.0]),
        ];
        let mut batch = BatchSolver::new(instances, options);
        let report = batch.run(2000);
        assert!(report.all_converged());
        assert!(
            report.instances[0].iterations < report.instances[1].iterations,
            "fast instance must freeze first ({} vs {})",
            report.instances[0].iterations,
            report.instances[1].iterations
        );
        assert_eq!(report.max_iterations(), report.instances[1].iterations);
    }

    #[test]
    fn batch_matches_solo_on_every_sync_descriptor() {
        let options_for = |scheduler| SolverOptions {
            scheduler,
            ..SolverOptions::default()
        };
        let solo: Vec<(VarStore, usize)> = mixed_instances()
            .into_iter()
            .map(|p| {
                let (s, it, _) = solo_solve(p, SolverOptions::default(), 600);
                (s, it)
            })
            .collect();
        for scheduler in [
            Scheduler::Serial,
            Scheduler::Rayon { threads: Some(2) },
            Scheduler::Barrier { threads: 2 },
            Scheduler::WorkSteal { threads: 2 },
            Scheduler::Sharded { parts: 2 },
            Scheduler::Auto { threads: 2 },
        ] {
            let mut batch = BatchSolver::new(mixed_instances(), options_for(scheduler));
            let report = batch.run(600);
            for (i, (store, iters)) in solo.iter().enumerate() {
                assert_eq!(
                    report.instances[i].iterations, *iters,
                    "{scheduler:?} instance {i} iterations"
                );
                assert_eq!(batch.store(i).z, store.z, "{scheduler:?} instance {i}");
                assert_eq!(batch.store(i).u, store.u, "{scheduler:?} instance {i}");
            }
        }
    }

    #[test]
    fn fixed_iteration_mode_runs_every_instance_to_budget() {
        let options = SolverOptions {
            stopping: StoppingCriteria::fixed_iterations(37),
            ..SolverOptions::default()
        };
        let mut batch = BatchSolver::new(mixed_instances(), options);
        let report = batch.run(37);
        for (i, r) in report.instances.iter().enumerate() {
            assert_eq!(r.iterations, 37, "instance {i}");
            assert_eq!(r.stop_reason, StopReason::MaxIterations);
            assert!(r.final_residuals.is_none());
        }
        // Bitwise equal to solo fixed runs.
        for (i, problem) in mixed_instances().into_iter().enumerate() {
            let (solo, _, _) = solo_solve(problem, options, 37);
            assert_eq!(batch.store(i).z, solo.z, "instance {i}");
        }
    }

    #[test]
    fn warm_start_carries_into_the_fused_solve() {
        let options = SolverOptions {
            stopping: StoppingCriteria::fixed_iterations(25),
            ..SolverOptions::default()
        };
        // Solo: seeded state, 25 iterations.
        let problem = consensus_problem(&[1.0, 5.0]);
        let mut seed = VarStore::zeros(problem.graph());
        for (j, v) in seed.n.iter_mut().enumerate() {
            *v = (j as f64 * 0.51).sin();
        }
        seed.snapshot_z();
        let mut solo = Solver::from_problem(problem, options);
        *solo.store_mut() = seed.clone();
        solo.run(25);

        let mut batch = BatchSolver::new(
            vec![consensus_problem(&[1.0, 5.0]), consensus_problem(&[7.0])],
            options,
        );
        batch.warm_start(0, seed);
        batch.run(25);
        assert_eq!(batch.store(0).z, solo.store().z);
        assert_eq!(batch.store(0).n, solo.store().n);
    }

    #[test]
    fn explicit_backend_is_used() {
        let options = SolverOptions::default();
        let mut batch = BatchSolver::with_backend(
            mixed_instances(),
            options,
            Box::new(WorkStealingBackend::new(2)),
        );
        assert_eq!(batch.backend_name(), "worksteal");
        let report = batch.run(1000);
        assert!(report.all_converged());
        let (solo, _, _) = solo_solve(consensus_problem(&[1.0, 5.0, 9.0]), options, 1000);
        assert_eq!(batch.store(0).z, solo.z);
    }

    #[test]
    fn sharded_descriptor_uses_zero_cut_partition() {
        let options = SolverOptions {
            scheduler: Scheduler::Sharded { parts: 2 },
            ..SolverOptions::default()
        };
        let mut batch = BatchSolver::new(mixed_instances(), options);
        let report = batch.run(1000);
        assert_eq!(batch.backend_name(), "sharded");
        assert!(report.all_converged());
        for (i, problem) in mixed_instances().into_iter().enumerate() {
            let (solo, iters, _) = solo_solve(problem, SolverOptions::default(), 1000);
            assert_eq!(report.instances[i].iterations, iters);
            assert_eq!(batch.store(i).z, solo.z, "instance {i}");
        }
    }

    #[test]
    fn report_throughput_accessors() {
        let mut batch = BatchSolver::new(mixed_instances(), SolverOptions::default());
        assert_eq!(batch.num_instances(), 3);
        let report = batch.run(1000);
        assert_eq!(report.instances.len(), 3);
        assert_eq!(report.converged_count(), 3);
        assert!(report.instances_per_second() > 0.0);
        assert!(batch.timings().iterations > 0);
    }

    #[test]
    fn request_group_adapter_matches_solo_requests() {
        use crate::request::SolveRequest;
        let outcomes = BatchSolver::solve_requests(
            mixed_instances()
                .into_iter()
                .map(SolveRequest::new)
                .collect(),
        );
        assert_eq!(outcomes.len(), 3);
        for (i, problem) in mixed_instances().into_iter().enumerate() {
            let solo = SolveRequest::new(problem).solve();
            assert_eq!(outcomes[i].iterations, solo.iterations, "instance {i}");
            assert_eq!(outcomes[i].stop_reason, solo.stop_reason);
            assert_eq!(outcomes[i].store.z, solo.store.z, "instance {i}");
        }
    }

    #[test]
    #[should_panic(expected = "disagrees on stopping")]
    fn request_group_requires_uniform_stopping() {
        use crate::request::SolveRequest;
        let _ = BatchSolver::from_requests(vec![
            SolveRequest::new(consensus_problem(&[1.0])),
            SolveRequest::new(consensus_problem(&[2.0]))
                .with_stopping(StoppingCriteria::fixed_iterations(5)),
        ]);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_batch_rejected() {
        let _ = BatchSolver::new(Vec::new(), SolverOptions::default());
    }

    #[test]
    #[should_panic(expected = "disagrees on dims")]
    fn mixed_dims_rejected() {
        let mut b = GraphBuilder::new(2);
        let v = b.add_var();
        b.add_factor(&[v]);
        let other = AdmmProblem::new(
            b.build(),
            vec![Box::new(QuadraticProx::isotropic(2, 1.0, &[0.0, 0.0])) as Box<dyn ProxOp>],
            1.0,
            1.0,
        );
        let _ = BatchSolver::new(
            vec![consensus_problem(&[1.0]), other],
            SolverOptions::default(),
        );
    }
}
