//! The five update kernels of Algorithm 2, expressed over index ranges.
//!
//! Every kernel is written as a *range* function so the same code drives
//! all three schedulers: the serial baseline passes the full range, the
//! barrier scheduler passes each worker's static partition, and the rayon
//! scheduler maps the per-element bodies over parallel chunk iterators.
//!
//! # SIMD specialization
//!
//! The element-wise bodies (`m`, `z`, `u`, `n`, fused `u+n`, and the
//! m-tail of the fused `x+m`) exist in two forms:
//!
//! * the original **scalar** loops with runtime `dims`, and
//! * **specialized** monomorphized variants for `d ∈ {1, 2, 3, 4}` (the
//!   paper families' dims) whose fixed trip-count inner loops the
//!   compiler fully unrolls and vectorizes, plus a 4-wide manually
//!   unrolled fallback for larger `d`.
//!
//! Both forms perform the *same per-output sequence of rounded
//! floating-point operations* — specialization only removes loop/bounds
//! overhead and improves instruction-level parallelism across
//! *independent* outputs, never re-associating any individual
//! accumulation — so iterates are bit-identical under either path (the
//! `tests/plan_equivalence.rs` / `backend_equivalence.rs` suites pin
//! this). [`set_kernel_dispatch`] selects the path process-wide; the
//! executors read it once per pass. The u/n sweeps additionally have
//! `*_stream` entry points driven by a dense
//! [`EdgeStream`] instead of `EdgeId`
//! accessor chains.

use std::sync::atomic::{AtomicU8, Ordering};

use paradmm_graph::{EdgeParams, EdgeStream, FactorGraph, FactorId, VarId};
use paradmm_prox::{ProxCtx, ProxOp};

/// Which element-wise kernel bodies the executors run (see module docs).
/// Both choices produce bit-identical iterates; `Scalar` exists so the
/// SIMD ablation can measure the specialization honestly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelDispatch {
    /// The original runtime-`dims` scalar loops.
    Scalar,
    /// Fixed-`dims` monomorphized bodies (d ≤ 4) / 4-wide unrolled
    /// fallback, plus the [`EdgeStream`] path in the executors.
    Specialized,
}

/// 0 = Specialized (default), 1 = Scalar.
static KERNEL_DISPATCH: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel dispatch mode process-wide (picked up at the next
/// pass boundary). Defaults to [`KernelDispatch::Specialized`].
pub fn set_kernel_dispatch(mode: KernelDispatch) {
    KERNEL_DISPATCH.store(
        matches!(mode, KernelDispatch::Scalar) as u8,
        Ordering::Relaxed,
    );
}

/// The current kernel dispatch mode.
pub fn kernel_dispatch() -> KernelDispatch {
    if KERNEL_DISPATCH.load(Ordering::Relaxed) == 0 {
        KernelDispatch::Specialized
    } else {
        KernelDispatch::Scalar
    }
}

#[inline]
pub(crate) fn specialized() -> bool {
    KERNEL_DISPATCH.load(Ordering::Relaxed) == 0
}

/// Per-edge `(α, flat z-base)` source for the u/n bodies: either the
/// `EdgeId` accessor chain or the dense precomputed stream. Monomorphizing
/// the bodies over this trait keeps the two paths literally the same code.
trait EdgeCtx: Copy {
    fn alpha(&self, e: usize) -> f64;
    fn z_base(&self, e: usize) -> usize;
}

#[derive(Clone, Copy)]
struct AccessorCtx<'a> {
    graph: &'a FactorGraph,
    params: &'a EdgeParams,
    d: usize,
}

impl EdgeCtx for AccessorCtx<'_> {
    #[inline]
    fn alpha(&self, e: usize) -> f64 {
        self.params.alpha(paradmm_graph::EdgeId::from_usize(e))
    }
    #[inline]
    fn z_base(&self, e: usize) -> usize {
        self.graph
            .edge_var(paradmm_graph::EdgeId::from_usize(e))
            .idx()
            * self.d
    }
}

/// Context for the n body, which never reads `α` — only the z-base map.
#[derive(Clone, Copy)]
struct GraphCtx<'a> {
    graph: &'a FactorGraph,
    d: usize,
}

impl EdgeCtx for GraphCtx<'_> {
    #[inline]
    fn alpha(&self, _e: usize) -> f64 {
        unreachable!("n body never reads alpha")
    }
    #[inline]
    fn z_base(&self, e: usize) -> usize {
        self.graph
            .edge_var(paradmm_graph::EdgeId::from_usize(e))
            .idx()
            * self.d
    }
}

#[derive(Clone, Copy)]
struct StreamCtx<'a>(&'a EdgeStream);

impl EdgeCtx for StreamCtx<'_> {
    #[inline]
    fn alpha(&self, e: usize) -> f64 {
        self.0.alpha()[e]
    }
    #[inline]
    fn z_base(&self, e: usize) -> usize {
        self.0.z_base()[e] as usize
    }
}

// ---------------------------------------------------------------------------
// Monomorphized element-wise bodies.
//
// Write slices are *block-relative*: `u_block`/`n_block`/`z_block` cover
// exactly the range `[lo, hi)` being updated, so the same bodies serve
// full-array calls (serial), static partitions (barrier), claimed chunks
// (work-stealing) and rayon chunk iterators without aliasing whole
// arrays. Read arrays are always the full flat arrays.
// ---------------------------------------------------------------------------

/// `m[i] = x[i] + u[i]` over equal-length slices, 4-wide unrolled.
/// Element-wise with no accumulation, so unrolling is trivially
/// reassociation-free.
#[inline]
fn add_block(x: &[f64], u: &[f64], m: &mut [f64]) {
    let len = m.len();
    debug_assert!(x.len() == len && u.len() == len);
    let mut j = 0;
    while j + 4 <= len {
        m[j] = x[j] + u[j];
        m[j + 1] = x[j + 1] + u[j + 1];
        m[j + 2] = x[j + 2] + u[j + 2];
        m[j + 3] = x[j + 3] + u[j + 3];
        j += 4;
    }
    while j < len {
        m[j] = x[j] + u[j];
        j += 1;
    }
}

#[inline]
fn u_body_fixed<const D: usize, C: EdgeCtx>(
    ctx: C,
    x_all: &[f64],
    z_all: &[f64],
    u_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    for e in e_lo..e_hi {
        let alpha = ctx.alpha(e);
        let zb = ctx.z_base(e);
        let xe = &x_all[e * D..e * D + D];
        let z = &z_all[zb..zb + D];
        let ue = &mut u_block[(e - e_lo) * D..(e - e_lo) * D + D];
        for c in 0..D {
            ue[c] += alpha * (xe[c] - z[c]);
        }
    }
}

#[inline]
fn u_body_dyn<C: EdgeCtx>(
    ctx: C,
    d: usize,
    x_all: &[f64],
    z_all: &[f64],
    u_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    for e in e_lo..e_hi {
        let alpha = ctx.alpha(e);
        let zb = ctx.z_base(e);
        let xe = &x_all[e * d..e * d + d];
        let z = &z_all[zb..zb + d];
        let ue = &mut u_block[(e - e_lo) * d..(e - e_lo) * d + d];
        let mut c = 0;
        // Components are independent outputs: 4-wide unrolling changes
        // no per-output operation order.
        while c + 4 <= d {
            ue[c] += alpha * (xe[c] - z[c]);
            ue[c + 1] += alpha * (xe[c + 1] - z[c + 1]);
            ue[c + 2] += alpha * (xe[c + 2] - z[c + 2]);
            ue[c + 3] += alpha * (xe[c + 3] - z[c + 3]);
            c += 4;
        }
        while c < d {
            ue[c] += alpha * (xe[c] - z[c]);
            c += 1;
        }
    }
}

#[inline]
fn n_body_fixed<const D: usize, C: EdgeCtx>(
    ctx: C,
    z_all: &[f64],
    u_all: &[f64],
    n_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    for e in e_lo..e_hi {
        let zb = ctx.z_base(e);
        let z = &z_all[zb..zb + D];
        let ue = &u_all[e * D..e * D + D];
        let ne = &mut n_block[(e - e_lo) * D..(e - e_lo) * D + D];
        for c in 0..D {
            ne[c] = z[c] - ue[c];
        }
    }
}

#[inline]
fn n_body_dyn<C: EdgeCtx>(
    ctx: C,
    d: usize,
    z_all: &[f64],
    u_all: &[f64],
    n_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    for e in e_lo..e_hi {
        let zb = ctx.z_base(e);
        let z = &z_all[zb..zb + d];
        let ue = &u_all[e * d..e * d + d];
        let ne = &mut n_block[(e - e_lo) * d..(e - e_lo) * d + d];
        let mut c = 0;
        while c + 4 <= d {
            ne[c] = z[c] - ue[c];
            ne[c + 1] = z[c + 1] - ue[c + 1];
            ne[c + 2] = z[c + 2] - ue[c + 2];
            ne[c + 3] = z[c + 3] - ue[c + 3];
            c += 4;
        }
        while c < d {
            ne[c] = z[c] - ue[c];
            c += 1;
        }
    }
}

#[inline]
fn un_body_fixed<const D: usize, C: EdgeCtx>(
    ctx: C,
    x_all: &[f64],
    z_all: &[f64],
    u_block: &mut [f64],
    n_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    for e in e_lo..e_hi {
        let alpha = ctx.alpha(e);
        let zb = ctx.z_base(e);
        let xe = &x_all[e * D..e * D + D];
        let z = &z_all[zb..zb + D];
        let bo = (e - e_lo) * D;
        let ue = &mut u_block[bo..bo + D];
        let ne = &mut n_block[bo..bo + D];
        for c in 0..D {
            let u = ue[c] + alpha * (xe[c] - z[c]);
            ue[c] = u;
            ne[c] = z[c] - u;
        }
    }
}

#[inline]
#[allow(clippy::too_many_arguments)] // internal body; mirrors un_body_fixed plus the runtime dims
fn un_body_dyn<C: EdgeCtx>(
    ctx: C,
    d: usize,
    x_all: &[f64],
    z_all: &[f64],
    u_block: &mut [f64],
    n_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    for e in e_lo..e_hi {
        let alpha = ctx.alpha(e);
        let zb = ctx.z_base(e);
        let xe = &x_all[e * d..e * d + d];
        let z = &z_all[zb..zb + d];
        let bo = (e - e_lo) * d;
        let ue = &mut u_block[bo..bo + d];
        let ne = &mut n_block[bo..bo + d];
        let mut c = 0;
        while c + 4 <= d {
            let u0 = ue[c] + alpha * (xe[c] - z[c]);
            let u1 = ue[c + 1] + alpha * (xe[c + 1] - z[c + 1]);
            let u2 = ue[c + 2] + alpha * (xe[c + 2] - z[c + 2]);
            let u3 = ue[c + 3] + alpha * (xe[c + 3] - z[c + 3]);
            ue[c] = u0;
            ue[c + 1] = u1;
            ue[c + 2] = u2;
            ue[c + 3] = u3;
            ne[c] = z[c] - u0;
            ne[c + 1] = z[c + 1] - u1;
            ne[c + 2] = z[c + 2] - u2;
            ne[c + 3] = z[c + 3] - u3;
            c += 4;
        }
        while c < d {
            let u = ue[c] + alpha * (xe[c] - z[c]);
            ue[c] = u;
            ne[c] = z[c] - u;
            c += 1;
        }
    }
}

/// z body for `d = D`, copying schedule (degree-0 variables are left
/// unchanged in `z_block`). The weighted sum accumulates into a stack
/// array in *exactly* the fold order and association of the scalar path.
#[inline]
fn z_body_fixed<const D: usize>(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_block: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    for b in b_lo..b_hi {
        let edges = graph.var_edges(VarId::from_usize(b));
        if edges.is_empty() {
            continue;
        }
        let mut acc = [0.0f64; D];
        let mut rho_sum = 0.0;
        for &e in edges {
            let rho = params.rho(e);
            rho_sum += rho;
            let me = &m_all[e.idx() * D..e.idx() * D + D];
            for c in 0..D {
                acc[c] += rho * me[c];
            }
        }
        let inv = 1.0 / rho_sum;
        let out = &mut z_block[(b - b_lo) * D..(b - b_lo) * D + D];
        for c in 0..D {
            out[c] = acc[c] * inv;
        }
    }
}

/// z body for `d = D`, double-buffered schedule (degree-0 variables copy
/// forward from `z_old`).
#[inline]
fn z_swapped_body_fixed<const D: usize>(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_old: &[f64],
    z_block: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    for b in b_lo..b_hi {
        let edges = graph.var_edges(VarId::from_usize(b));
        let out = &mut z_block[(b - b_lo) * D..(b - b_lo) * D + D];
        if edges.is_empty() {
            out.copy_from_slice(&z_old[b * D..b * D + D]);
            continue;
        }
        let mut acc = [0.0f64; D];
        let mut rho_sum = 0.0;
        for &e in edges {
            let rho = params.rho(e);
            rho_sum += rho;
            let me = &m_all[e.idx() * D..e.idx() * D + D];
            for c in 0..D {
                acc[c] += rho * me[c];
            }
        }
        let inv = 1.0 / rho_sum;
        for c in 0..D {
            out[c] = acc[c] * inv;
        }
    }
}

/// The five kinds of sweep in one ADMM iteration, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Proximal-operator sweep over factors.
    X,
    /// `m = x + u` sweep over edges.
    M,
    /// Weighted-average sweep over variable nodes.
    Z,
    /// Dual-ascent sweep over edges.
    U,
    /// `n = z − u` sweep over edges.
    N,
}

impl UpdateKind {
    /// All kinds in execution order.
    pub const ALL: [UpdateKind; 5] = [
        UpdateKind::X,
        UpdateKind::M,
        UpdateKind::Z,
        UpdateKind::U,
        UpdateKind::N,
    ];

    /// Index 0..5 in execution order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            UpdateKind::X => 0,
            UpdateKind::M => 1,
            UpdateKind::Z => 2,
            UpdateKind::U => 3,
            UpdateKind::N => 4,
        }
    }

    /// Short lowercase label matching the paper's figures ("x-update", …).
    pub fn label(self) -> &'static str {
        match self {
            UpdateKind::X => "x",
            UpdateKind::M => "m",
            UpdateKind::Z => "z",
            UpdateKind::U => "u",
            UpdateKind::N => "n",
        }
    }
}

/// Runs the proximal operator of one factor: reads the factor's contiguous
/// block of `n_all`, writes its block of `x_factor` (which must be exactly
/// that factor's slice of the global x array).
#[inline]
pub fn x_update_factor(
    graph: &FactorGraph,
    prox: &dyn ProxOp,
    params: &EdgeParams,
    n_all: &[f64],
    x_factor: &mut [f64],
    a: FactorId,
) {
    let d = graph.dims();
    let er = graph.factor_edge_range(a);
    let n = &n_all[er.start * d..er.end * d];
    let rho = &params.rho[er];
    debug_assert_eq!(x_factor.len(), n.len());
    let mut ctx = ProxCtx::new(n, rho, x_factor, d);
    prox.prox(&mut ctx);
}

/// x-update over a contiguous factor range `[a_lo, a_hi)`; `x_all` is the
/// full global x array.
pub fn x_update_range(
    graph: &FactorGraph,
    proxes: &[Box<dyn ProxOp>],
    params: &EdgeParams,
    n_all: &[f64],
    x_all: &mut [f64],
    a_lo: usize,
    a_hi: usize,
) {
    let d = graph.dims();
    for a in a_lo..a_hi {
        let fa = FactorId::from_usize(a);
        let er = graph.factor_edge_range(fa);
        let x_factor = &mut x_all[er.start * d..er.end * d];
        x_update_factor(graph, &*proxes[a], params, n_all, x_factor, fa);
    }
}

/// m-update over flat component range `[lo, hi)`: `m = x + u`.
#[inline]
pub fn m_update_range(x: &[f64], u: &[f64], m: &mut [f64], lo: usize, hi: usize) {
    if specialized() {
        add_block(&x[lo..hi], &u[lo..hi], &mut m[lo..hi]);
    } else {
        for j in lo..hi {
            m[j] = x[j] + u[j];
        }
    }
}

/// Fused x+m over a contiguous factor range `[a_lo, a_hi)`: each factor
/// runs its proximal operator and immediately forms `m = x + u` for its
/// own (contiguous) edge block.
///
/// Bit-identical to running [`x_update_range`] over all factors followed
/// by [`m_update_range`] over all edges: the x sweep reads only `n`, the
/// m body of edge `e` reads only `x_e` (just written by the same factor)
/// and `u_e` (written by neither sweep) — so interleaving per factor
/// reorders no floating-point operation within any single output value.
/// One pass fewer over the `x` array, and one synchronization point
/// fewer per iteration in barrier-style backends.
#[allow(clippy::too_many_arguments)] // mirrors the sweep signature family
pub fn xm_update_range(
    graph: &FactorGraph,
    proxes: &[Box<dyn ProxOp>],
    params: &EdgeParams,
    n_all: &[f64],
    u_all: &[f64],
    x_all: &mut [f64],
    m_all: &mut [f64],
    a_lo: usize,
    a_hi: usize,
) {
    let d = graph.dims();
    for a in a_lo..a_hi {
        let fa = FactorId::from_usize(a);
        let er = graph.factor_edge_range(fa);
        let (flo, fhi) = (er.start * d, er.end * d);
        x_update_factor(graph, &*proxes[a], params, n_all, &mut x_all[flo..fhi], fa);
        if specialized() {
            add_block(&x_all[flo..fhi], &u_all[flo..fhi], &mut m_all[flo..fhi]);
        } else {
            for j in flo..fhi {
                m_all[j] = x_all[j] + u_all[j];
            }
        }
    }
}

/// Dims threshold below which [`z_update_var`] accumulates on the stack.
const Z_STACK_DIMS: usize = 8;

/// z-update body for a single variable node `b`:
/// `z_b = Σ_{e∈∂b} ρ_e m_e / Σ_{e∈∂b} ρ_e`, written into `z_b_out` (that
/// variable's `dims`-slice of the global z array). Variables of degree 0
/// are left unchanged (no information flows to them).
///
/// For `dims ≤ 8` the weighted sum accumulates into a stack array and
/// `z_b_out` is written once, instead of the historical
/// `fill(0.0)` / accumulate-in-place / scale-in-place triple pass over
/// the output slice. This is bit-identical: the accumulator starts from
/// the same `+0.0` the `fill` produced and the *first* contribution is
/// still added to it (`0.0 + ρ·m`) rather than assigned — the two differ
/// when `ρ·m` is `-0.0` (IEEE 754: `0.0 + (-0.0) = +0.0`) — every
/// subsequent `+=` happens in the same fold order, and the final
/// `acc · inv` is the very multiplication `*= inv` performed. Only the
/// redundant memory traffic is gone.
#[inline]
pub fn z_update_var(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_b_out: &mut [f64],
    b: VarId,
) {
    let d = graph.dims();
    let edges = graph.var_edges(b);
    if edges.is_empty() {
        return;
    }
    let mut rho_sum = 0.0;
    if d <= Z_STACK_DIMS {
        let mut acc = [0.0f64; Z_STACK_DIMS];
        for &e in edges {
            let rho = params.rho(e);
            rho_sum += rho;
            let me = &m_all[e.idx() * d..(e.idx() + 1) * d];
            for c in 0..d {
                acc[c] += rho * me[c];
            }
        }
        let inv = 1.0 / rho_sum;
        for c in 0..d {
            z_b_out[c] = acc[c] * inv;
        }
    } else {
        z_b_out.fill(0.0);
        for &e in edges {
            let rho = params.rho(e);
            rho_sum += rho;
            let me = &m_all[e.idx() * d..(e.idx() + 1) * d];
            for c in 0..d {
                z_b_out[c] += rho * me[c];
            }
        }
        let inv = 1.0 / rho_sum;
        for c in 0..d {
            z_b_out[c] *= inv;
        }
    }
}

/// z-update over a contiguous variable range `[b_lo, b_hi)`; `z_all` is the
/// full global z array.
pub fn z_update_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_all: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    let d = graph.dims();
    if specialized() {
        let z_block = &mut z_all[b_lo * d..b_hi * d];
        match d {
            1 => return z_body_fixed::<1>(graph, params, m_all, z_block, b_lo, b_hi),
            2 => return z_body_fixed::<2>(graph, params, m_all, z_block, b_lo, b_hi),
            3 => return z_body_fixed::<3>(graph, params, m_all, z_block, b_lo, b_hi),
            4 => return z_body_fixed::<4>(graph, params, m_all, z_block, b_lo, b_hi),
            _ => {} // large dims: per-var body below (stack path covers d ≤ 8)
        }
    }
    for b in b_lo..b_hi {
        let zb = &mut z_all[b * d..(b + 1) * d];
        z_update_var(graph, params, m_all, zb, VarId::from_usize(b));
    }
}

/// z-update body for the double-buffered (swap) schedule: variable `b`'s
/// fresh average is written into `z_b_out` (a slice of the *write*
/// buffer, stale by two iterations after a [`paradmm_graph::VarStore::swap_z`]);
/// a degree-0 variable instead copies its value forward from `z_old_b`
/// (its slice of the previous iterate), reproducing the copying
/// schedule's "left unchanged" semantics bit for bit.
#[inline]
pub fn z_update_swapped_var(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_old_b: &[f64],
    z_b_out: &mut [f64],
    b: VarId,
) {
    if graph.var_edges(b).is_empty() {
        z_b_out.copy_from_slice(z_old_b);
    } else {
        z_update_var(graph, params, m_all, z_b_out, b);
    }
}

/// z-update over a contiguous variable range `[b_lo, b_hi)` for the
/// double-buffered schedule: `z_old` is the full previous-iterate buffer
/// (`z_prev` after the swap), `z_new` the full write buffer.
pub fn z_update_swapped_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_old: &[f64],
    z_new: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    let d = graph.dims();
    z_update_swapped_block(
        graph,
        params,
        m_all,
        z_old,
        &mut z_new[b_lo * d..b_hi * d],
        b_lo,
        b_hi,
    );
}

/// [`z_update_swapped_range`] with a *block-relative* write slice:
/// `z_block` covers exactly the variables `[b_lo, b_hi)` (`z_old` stays
/// the full previous-iterate buffer), so parallel executors can pass the
/// disjoint chunk they own.
pub fn z_update_swapped_block(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_old: &[f64],
    z_block: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    let d = graph.dims();
    debug_assert_eq!(z_block.len(), (b_hi - b_lo) * d);
    if specialized() {
        match d {
            1 => {
                return z_swapped_body_fixed::<1>(graph, params, m_all, z_old, z_block, b_lo, b_hi)
            }
            2 => {
                return z_swapped_body_fixed::<2>(graph, params, m_all, z_old, z_block, b_lo, b_hi)
            }
            3 => {
                return z_swapped_body_fixed::<3>(graph, params, m_all, z_old, z_block, b_lo, b_hi)
            }
            4 => {
                return z_swapped_body_fixed::<4>(graph, params, m_all, z_old, z_block, b_lo, b_hi)
            }
            _ => {} // large dims: per-var body below (stack path covers d ≤ 8)
        }
    }
    for b in b_lo..b_hi {
        let r = (b - b_lo) * d..(b - b_lo + 1) * d;
        z_update_swapped_var(
            graph,
            params,
            m_all,
            &z_old[b * d..(b + 1) * d],
            &mut z_block[r],
            VarId::from_usize(b),
        );
    }
}

/// u-update body for a single edge `e`:
/// `u_e ← u_e + α_e (x_e − z_{var(e)})`, written into `u_e_out`.
#[inline]
pub fn u_update_edge(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_e_out: &mut [f64],
    e: paradmm_graph::EdgeId,
) {
    let d = graph.dims();
    let alpha = params.alpha(e);
    let b = graph.edge_var(e);
    let xe = &x_all[e.idx() * d..(e.idx() + 1) * d];
    let zb = &z_all[b.idx() * d..(b.idx() + 1) * d];
    for c in 0..d {
        u_e_out[c] += alpha * (xe[c] - zb[c]);
    }
}

/// u-update over a contiguous edge range `[e_lo, e_hi)`.
pub fn u_update_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_all: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let d = graph.dims();
    if specialized() {
        let ctx = AccessorCtx { graph, params, d };
        let u_block = &mut u_all[e_lo * d..e_hi * d];
        return match d {
            1 => u_body_fixed::<1, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
            2 => u_body_fixed::<2, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
            3 => u_body_fixed::<3, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
            4 => u_body_fixed::<4, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
            _ => u_body_dyn(ctx, d, x_all, z_all, u_block, e_lo, e_hi),
        };
    }
    for e in e_lo..e_hi {
        let ue = &mut u_all[e * d..(e + 1) * d];
        u_update_edge(
            graph,
            params,
            x_all,
            z_all,
            ue,
            paradmm_graph::EdgeId::from_usize(e),
        );
    }
}

/// [`u_update_range`] driven by a dense [`EdgeStream`] instead of the
/// `EdgeId` accessor chain; `u_block` is *block-relative* — it covers
/// exactly the edges `[e_lo, e_hi)` — so parallel executors can pass the
/// disjoint chunk they own. Always runs the specialized bodies.
pub fn u_update_range_stream(
    stream: &EdgeStream,
    x_all: &[f64],
    z_all: &[f64],
    u_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let ctx = StreamCtx(stream);
    match stream.dims() {
        1 => u_body_fixed::<1, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
        2 => u_body_fixed::<2, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
        3 => u_body_fixed::<3, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
        4 => u_body_fixed::<4, _>(ctx, x_all, z_all, u_block, e_lo, e_hi),
        d => u_body_dyn(ctx, d, x_all, z_all, u_block, e_lo, e_hi),
    }
}

/// Fused u+n body for a single edge `e`: the dual ascent
/// `u_e ← u_e + α_e (x_e − z_{var(e)})` immediately followed by
/// `n_e = z_{var(e)} − u_e` on the freshly written dual.
///
/// `n_e` depends only on `z` (read-only in both sweeps) and on `u_e` of
/// the *same* edge, so fusing the two edge sweeps into one pass is
/// bit-identical to running [`u_update_edge`] over all edges and then
/// [`n_update_edge`] over all edges — while costing one less
/// synchronization point per iteration in barrier-style backends and one
/// less pass over the `u` array everywhere.
#[inline]
pub fn un_update_edge(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_e_out: &mut [f64],
    n_e_out: &mut [f64],
    e: paradmm_graph::EdgeId,
) {
    let d = graph.dims();
    let alpha = params.alpha(e);
    let b = graph.edge_var(e);
    let xe = &x_all[e.idx() * d..(e.idx() + 1) * d];
    let zb = &z_all[b.idx() * d..(b.idx() + 1) * d];
    for c in 0..d {
        u_e_out[c] += alpha * (xe[c] - zb[c]);
        n_e_out[c] = zb[c] - u_e_out[c];
    }
}

/// Fused u+n update over a contiguous edge range `[e_lo, e_hi)`; `u_all`
/// and `n_all` are the full global arrays.
#[allow(clippy::too_many_arguments)] // mirrors the sweep signature family
pub fn un_update_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_all: &mut [f64],
    n_all: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let d = graph.dims();
    if specialized() {
        let ctx = AccessorCtx { graph, params, d };
        let u_block = &mut u_all[e_lo * d..e_hi * d];
        let n_block = &mut n_all[e_lo * d..e_hi * d];
        return match d {
            1 => un_body_fixed::<1, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
            2 => un_body_fixed::<2, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
            3 => un_body_fixed::<3, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
            4 => un_body_fixed::<4, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
            _ => un_body_dyn(ctx, d, x_all, z_all, u_block, n_block, e_lo, e_hi),
        };
    }
    for e in e_lo..e_hi {
        let lo = e * d;
        un_update_edge(
            graph,
            params,
            x_all,
            z_all,
            &mut u_all[lo..lo + d],
            &mut n_all[lo..lo + d],
            paradmm_graph::EdgeId::from_usize(e),
        );
    }
}

/// [`un_update_range`] driven by a dense [`EdgeStream`]; `u_block` and
/// `n_block` are *block-relative* (they cover exactly `[e_lo, e_hi)`).
/// Always runs the specialized bodies.
pub fn un_update_range_stream(
    stream: &EdgeStream,
    x_all: &[f64],
    z_all: &[f64],
    u_block: &mut [f64],
    n_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let ctx = StreamCtx(stream);
    match stream.dims() {
        1 => un_body_fixed::<1, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
        2 => un_body_fixed::<2, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
        3 => un_body_fixed::<3, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
        4 => un_body_fixed::<4, _>(ctx, x_all, z_all, u_block, n_block, e_lo, e_hi),
        d => un_body_dyn(ctx, d, x_all, z_all, u_block, n_block, e_lo, e_hi),
    }
}

/// n-update body for a single edge `e`: `n_e = z_{var(e)} − u_e`.
#[inline]
pub fn n_update_edge(
    graph: &FactorGraph,
    z_all: &[f64],
    u_all: &[f64],
    n_e_out: &mut [f64],
    e: paradmm_graph::EdgeId,
) {
    let d = graph.dims();
    let b = graph.edge_var(e);
    let zb = &z_all[b.idx() * d..(b.idx() + 1) * d];
    let ue = &u_all[e.idx() * d..(e.idx() + 1) * d];
    for c in 0..d {
        n_e_out[c] = zb[c] - ue[c];
    }
}

/// n-update over a contiguous edge range `[e_lo, e_hi)`.
pub fn n_update_range(
    graph: &FactorGraph,
    z_all: &[f64],
    u_all: &[f64],
    n_all: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let d = graph.dims();
    if specialized() {
        let ctx = GraphCtx { graph, d };
        let n_block = &mut n_all[e_lo * d..e_hi * d];
        return match d {
            1 => n_body_fixed::<1, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
            2 => n_body_fixed::<2, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
            3 => n_body_fixed::<3, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
            4 => n_body_fixed::<4, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
            _ => n_body_dyn(ctx, d, z_all, u_all, n_block, e_lo, e_hi),
        };
    }
    for e in e_lo..e_hi {
        let ne = &mut n_all[e * d..(e + 1) * d];
        n_update_edge(
            graph,
            z_all,
            u_all,
            ne,
            paradmm_graph::EdgeId::from_usize(e),
        );
    }
}

/// [`n_update_range`] driven by a dense [`EdgeStream`]; `n_block` is
/// *block-relative* (it covers exactly `[e_lo, e_hi)`). Always runs the
/// specialized bodies.
pub fn n_update_range_stream(
    stream: &EdgeStream,
    z_all: &[f64],
    u_all: &[f64],
    n_block: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let ctx = StreamCtx(stream);
    match stream.dims() {
        1 => n_body_fixed::<1, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
        2 => n_body_fixed::<2, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
        3 => n_body_fixed::<3, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
        4 => n_body_fixed::<4, _>(ctx, z_all, u_all, n_block, e_lo, e_hi),
        d => n_body_dyn(ctx, d, z_all, u_all, n_block, e_lo, e_hi),
    }
}

/// Splits `data` (the global x array) into one mutable slice per factor,
/// in factor order. The slices partition `data` exactly because factor
/// edge ranges are contiguous and cover all edges.
pub fn split_factor_blocks<'a>(graph: &FactorGraph, mut data: &'a mut [f64]) -> Vec<&'a mut [f64]> {
    let d = graph.dims();
    let mut out = Vec::with_capacity(graph.num_factors());
    for a in graph.factors() {
        let len = graph.factor_degree(a) * d;
        let (head, tail) = data.split_at_mut(len);
        out.push(head);
        data = tail;
    }
    debug_assert!(data.is_empty());
    out
}

/// Evenly partitions `n_items` across `n_parts`, mirroring the paper's
/// `AssignThreads`: the first `n_items % n_parts` parts get
/// `⌈n/p⌉` items, the rest `⌊n/p⌋`, so sizes differ by at most one and
/// work is front-loaded.
///
/// When `n_parts > n_items`, each of the first `n_items` parts gets
/// exactly one item and every trailing part is the empty range
/// `(n_items, n_items)`. The old `i·n/p` formula instead scattered the
/// items over arbitrary middle parts, leaving leading Barrier workers
/// spinning at every phase barrier with no work while loaded workers sat
/// further down the thread list.
///
/// This is the single balanced-split helper shared by every static
/// partitioner: the barrier backend's per-thread sweep ranges and the
/// sharded backend's halo-reduce tiling both call it, so the
/// front-loading regression tests below guard both call sites (the
/// sharded one additionally via
/// `sharded::tests::more_shards_than_halo_vars_front_loads_reduce`).
#[inline]
pub fn assign_range(n_items: usize, part: usize, n_parts: usize) -> (usize, usize) {
    debug_assert!(part < n_parts, "part {part} out of range for {n_parts}");
    let base = n_items / n_parts;
    let rem = n_items % n_parts;
    let lo = part * base + part.min(rem);
    let hi = lo + base + usize::from(part < rem);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradmm_graph::{GraphBuilder, VarStore};
    use paradmm_prox::ZeroProx;

    fn chain(dims: usize) -> (FactorGraph, EdgeParams) {
        // v0 -f0- v1 -f1- v2, factors of degree 2.
        let mut b = GraphBuilder::new(dims);
        let vs = b.add_vars(3);
        b.add_factor(&[vs[0], vs[1]]);
        b.add_factor(&[vs[1], vs[2]]);
        let g = b.build();
        let p = EdgeParams::uniform(&g, 1.0, 1.0);
        (g, p)
    }

    #[test]
    fn update_kind_ordering() {
        assert_eq!(UpdateKind::ALL[0].index(), 0);
        assert_eq!(UpdateKind::ALL[4].label(), "n");
    }

    #[test]
    fn m_update_adds() {
        let x = [1.0, 2.0];
        let u = [10.0, 20.0];
        let mut m = [0.0; 2];
        m_update_range(&x, &u, &mut m, 0, 2);
        assert_eq!(m, [11.0, 22.0]);
    }

    #[test]
    fn z_update_weighted_average() {
        let (g, mut p) = chain(1);
        // Variable 1 touches edges 1 (factor 0) and 2 (factor 1).
        p.rho = vec![1.0, 2.0, 3.0, 1.0].into();
        let m = [0.0, 6.0, 12.0, 0.0];
        let mut z = [0.0; 3];
        z_update_range(&g, &p, &m, &mut z, 0, 3);
        // z1 = (2·6 + 3·12)/(2+3) = 48/5
        assert!((z[1] - 9.6).abs() < 1e-12);
        // z0 from edge 0 alone, z2 from edge 3 alone.
        assert_eq!(z[0], 0.0);
        assert_eq!(z[2], 0.0);
    }

    #[test]
    fn z_update_skips_isolated_var() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_var();
        let _iso = b.add_var();
        b.add_factor(&[v0]);
        let g = b.build();
        let p = EdgeParams::uniform(&g, 1.0, 1.0);
        let m = [5.0];
        let mut z = [0.0, 7.0];
        z_update_range(&g, &p, &m, &mut z, 0, 2);
        assert_eq!(z, [5.0, 7.0]); // isolated var untouched
    }

    #[test]
    fn u_update_accumulates_scaled_residual() {
        let (g, mut p) = chain(1);
        p.alpha = vec![0.5; 4].into();
        let x = [2.0, 0.0, 0.0, 0.0];
        let z = [1.0, 0.0, 0.0];
        let mut u = [1.0, 0.0, 0.0, 0.0];
        u_update_range(&g, &p, &x, &z, &mut u, 0, 4);
        // edge 0 targets var 0: u += 0.5·(2−1) = 1.5
        assert!((u[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn n_update_is_z_minus_u() {
        let (g, _) = chain(1);
        let z = [1.0, 2.0, 3.0];
        let u = [0.5, 0.5, 0.5, 0.5];
        let mut n = [0.0; 4];
        n_update_range(&g, &z, &u, &mut n, 0, 4);
        // edges target vars 0,1,1,2.
        assert_eq!(n, [0.5, 1.5, 1.5, 2.5]);
    }

    #[test]
    fn x_update_runs_prox_per_factor() {
        let (g, p) = chain(2);
        let mut store = VarStore::zeros(&g);
        for (i, v) in store.n.iter_mut().enumerate() {
            *v = i as f64;
        }
        let proxes: Vec<Box<dyn ProxOp>> = vec![Box::new(ZeroProx), Box::new(ZeroProx)];
        let n_snapshot = store.n.clone();
        x_update_range(&g, &proxes, &p, &n_snapshot, &mut store.x, 0, 2);
        assert_eq!(store.x, store.n); // ZeroProx copies n into x
    }

    #[test]
    fn split_factor_blocks_partitions() {
        let (g, _) = chain(3);
        let mut data = vec![0.0; g.num_edges() * 3];
        let blocks = split_factor_blocks(&g, &mut data);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), 6);
        assert_eq!(blocks[1].len(), 6);
    }

    #[test]
    fn fused_un_matches_separate_sweeps_bitwise() {
        let (g, mut p) = chain(2);
        p.alpha = vec![0.3, 0.7, 1.1, 0.9].into();
        p.rho = vec![1.0, 2.0, 0.5, 3.0].into();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).sin()).collect();
        let z: Vec<f64> = (0..6).map(|i| (i as f64 * 0.4).cos()).collect();
        let u0: Vec<f64> = (0..8).map(|i| i as f64 * 0.25 - 1.0).collect();

        let mut u_sep = u0.clone();
        let mut n_sep = vec![0.0; 8];
        u_update_range(&g, &p, &x, &z, &mut u_sep, 0, 4);
        n_update_range(&g, &z, &u_sep, &mut n_sep, 0, 4);

        let mut u_fused = u0;
        let mut n_fused = vec![0.0; 8];
        un_update_range(&g, &p, &x, &z, &mut u_fused, &mut n_fused, 0, 4);

        assert_eq!(u_sep, u_fused);
        assert_eq!(n_sep, n_fused);
    }

    #[test]
    fn fused_xm_matches_separate_sweeps_bitwise() {
        let (g, mut p) = chain(2);
        p.rho = vec![1.0, 2.0, 0.5, 3.0].into();
        let proxes: Vec<Box<dyn ProxOp>> = vec![Box::new(ZeroProx), Box::new(ZeroProx)];
        let n: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin()).collect();
        let u: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();

        let mut x_sep = vec![0.0; 8];
        let mut m_sep = vec![0.0; 8];
        x_update_range(&g, &proxes, &p, &n, &mut x_sep, 0, 2);
        m_update_range(&x_sep, &u, &mut m_sep, 0, 8);

        let mut x_fused = vec![0.0; 8];
        let mut m_fused = vec![0.0; 8];
        xm_update_range(&g, &proxes, &p, &n, &u, &mut x_fused, &mut m_fused, 0, 2);

        assert_eq!(x_sep, x_fused);
        assert_eq!(m_sep, m_fused);
    }

    #[test]
    fn swapped_z_matches_copy_schedule_and_carries_isolated_vars() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_var();
        let _iso = b.add_var();
        let v2 = b.add_var();
        b.add_factor(&[v0, v2]);
        let g = b.build();
        let p = EdgeParams::uniform(&g, 2.0, 1.0);
        let m = [5.0, 3.0];

        // Copying schedule: snapshot then in-place update.
        let mut z_copy = [1.0, 7.0, -2.0];
        z_update_range(&g, &p, &m, &mut z_copy, 0, 3);

        // Swap schedule: old iterate in z_old, garbage in the write buffer.
        let z_old = [1.0, 7.0, -2.0];
        let mut z_new = [999.0; 3];
        z_update_swapped_range(&g, &p, &m, &z_old, &mut z_new, 0, 3);
        assert_eq!(z_new, z_copy);
        assert_eq!(z_new[1], 7.0, "isolated var carried forward");
    }

    /// Serializes tests that flip the global dispatch mode. (Correctness
    /// never depends on the mode — both paths are bit-identical — but a
    /// concurrent toggler could make a mode *assertion* flaky.)
    static DISPATCH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// An irregular fixture: degrees 1..3, one isolated variable, varied
    /// per-edge ρ/α, state arrays seeded with irrational-phase waves.
    #[allow(clippy::type_complexity)]
    fn irregular(
        dims: usize,
    ) -> (
        FactorGraph,
        EdgeParams,
        Vec<f64>, // x   (edges)
        Vec<f64>, // m0  (edges)
        Vec<f64>, // u0  (edges)
        Vec<f64>, // z0  (vars)
    ) {
        let mut b = GraphBuilder::new(dims);
        let vs = b.add_vars(5); // vs[4] stays isolated
        b.add_factor(&[vs[0], vs[1]]);
        b.add_factor(&[vs[1], vs[2]]);
        b.add_factor(&[vs[0], vs[2], vs[3]]);
        b.add_factor(&[vs[3]]);
        let g = b.build();
        let mut p = EdgeParams::uniform(&g, 1.0, 1.0);
        for (i, r) in p.rho.as_mut_slice().iter_mut().enumerate() {
            *r = 0.5 + (i as f64 * 0.37).sin().abs();
        }
        for (i, a) in p.alpha.as_mut_slice().iter_mut().enumerate() {
            *a = 0.3 + (i as f64 * 0.23).cos().abs();
        }
        let (ne, nv) = (g.num_edges(), g.num_vars());
        let x = (0..ne * dims).map(|i| (i as f64 * 0.9).sin()).collect();
        let m0 = (0..ne * dims).map(|i| (i as f64 * 0.7).cos()).collect();
        let u0 = (0..ne * dims).map(|i| (i as f64 * 0.31).sin()).collect();
        let z0 = (0..nv * dims).map(|i| (i as f64 * 0.11).cos()).collect();
        (g, p, x, m0, u0, z0)
    }

    /// The specialized bodies (fixed-D for d ≤ 4, 4-wide unrolled beyond)
    /// must be bit-identical to the scalar loops for every kernel.
    #[test]
    fn specialized_matches_scalar_bitwise() {
        let _guard = DISPATCH_LOCK.lock().unwrap();
        for dims in [1usize, 2, 3, 4, 6, 9] {
            let (g, p, x, m0, u0, z0) = irregular(dims);
            let (ne, nv) = (g.num_edges(), g.num_vars());
            let run = |mode: KernelDispatch| {
                set_kernel_dispatch(mode);
                let mut m = vec![0.0; ne * dims];
                m_update_range(&x, &u0, &mut m, 0, ne * dims);
                let mut z = z0.clone();
                z_update_range(&g, &p, &m0, &mut z, 0, nv);
                let mut z_sw = vec![0.0; nv * dims];
                z_update_swapped_range(&g, &p, &m0, &z0, &mut z_sw, 0, nv);
                let mut u = u0.clone();
                u_update_range(&g, &p, &x, &z0, &mut u, 0, ne);
                let mut n = vec![0.0; ne * dims];
                n_update_range(&g, &z0, &u0, &mut n, 0, ne);
                let mut uf = u0.clone();
                let mut nf = vec![0.0; ne * dims];
                un_update_range(&g, &p, &x, &z0, &mut uf, &mut nf, 0, ne);
                set_kernel_dispatch(KernelDispatch::Specialized);
                (m, z, z_sw, u, n, uf, nf)
            };
            let scalar = run(KernelDispatch::Scalar);
            let fast = run(KernelDispatch::Specialized);
            assert_eq!(scalar, fast, "dims {dims}");
        }
    }

    /// The `EdgeStream`-driven entry points must match the accessor path,
    /// including on partial (block-relative) ranges.
    #[test]
    fn stream_kernels_match_accessor_path() {
        for dims in [1usize, 2, 3, 4, 6] {
            let (g, p, x, _m0, u0, z0) = irregular(dims);
            let ne = g.num_edges();
            let stream = EdgeStream::build(&g, &p);

            let mut u_acc = u0.clone();
            u_update_range(&g, &p, &x, &z0, &mut u_acc, 0, ne);
            let mut u_st = u0.clone();
            u_update_range_stream(&stream, &x, &z0, &mut u_st, 0, ne);
            assert_eq!(u_acc, u_st, "u dims {dims}");

            let mut n_acc = vec![0.0; ne * dims];
            n_update_range(&g, &z0, &u0, &mut n_acc, 0, ne);
            let mut n_st = vec![0.0; ne * dims];
            n_update_range_stream(&stream, &z0, &u0, &mut n_st, 0, ne);
            assert_eq!(n_acc, n_st, "n dims {dims}");

            let mut uf_acc = u0.clone();
            let mut nf_acc = vec![0.0; ne * dims];
            un_update_range(&g, &p, &x, &z0, &mut uf_acc, &mut nf_acc, 0, ne);
            let mut uf_st = u0.clone();
            let mut nf_st = vec![0.0; ne * dims];
            un_update_range_stream(&stream, &x, &z0, &mut uf_st, &mut nf_st, 0, ne);
            assert_eq!((uf_acc, nf_acc), (uf_st, nf_st), "un dims {dims}");

            // Block-relative partial range: edges [1, ne-1).
            let (lo, hi) = (1, ne - 1);
            let mut u_blk = u0[lo * dims..hi * dims].to_vec();
            u_update_range_stream(&stream, &x, &z0, &mut u_blk, lo, hi);
            assert_eq!(u_blk, u_acc[lo * dims..hi * dims], "u block dims {dims}");
        }
    }

    #[test]
    fn dispatch_mode_round_trips() {
        let _guard = DISPATCH_LOCK.lock().unwrap();
        assert_eq!(kernel_dispatch(), KernelDispatch::Specialized);
        set_kernel_dispatch(KernelDispatch::Scalar);
        assert_eq!(kernel_dispatch(), KernelDispatch::Scalar);
        set_kernel_dispatch(KernelDispatch::Specialized);
        assert_eq!(kernel_dispatch(), KernelDispatch::Specialized);
    }

    #[test]
    fn assign_range_covers_exactly() {
        for n in [0usize, 1, 7, 100] {
            for p in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for i in 0..p {
                    let (lo, hi) = assign_range(n, i, p);
                    assert_eq!(lo, prev_hi);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n, "n={n} p={p}");
                assert_eq!(prev_hi, n);
            }
        }
    }

    #[test]
    fn assign_range_sizes_differ_by_at_most_one() {
        for n in [1usize, 5, 17, 100, 101] {
            for p in [1usize, 2, 3, 7, 16] {
                let sizes: Vec<usize> = (0..p)
                    .map(|i| {
                        let (lo, hi) = assign_range(n, i, p);
                        hi - lo
                    })
                    .collect();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1, "n={n} p={p} sizes={sizes:?}");
            }
        }
    }

    /// Regression: with more parts than items, the first `n_items` parts
    /// must each own exactly one item and every trailing part must be
    /// empty — the old `i·n/p` split scattered the items across middle
    /// parts, so Barrier workers at the front of the thread list spun on
    /// empty ranges while the work sat elsewhere.
    #[test]
    fn assign_range_more_parts_than_items_front_loads() {
        for (n, p) in [(0usize, 4usize), (1, 8), (3, 8), (5, 7)] {
            for i in 0..p {
                let (lo, hi) = assign_range(n, i, p);
                if i < n {
                    assert_eq!((lo, hi), (i, i + 1), "n={n} p={p} part={i}");
                } else {
                    assert_eq!((lo, hi), (n, n), "n={n} p={p} part={i}");
                }
            }
        }
    }
}
