//! The five update kernels of Algorithm 2, expressed over index ranges.
//!
//! Every kernel is written as a *range* function so the same code drives
//! all three schedulers: the serial baseline passes the full range, the
//! barrier scheduler passes each worker's static partition, and the rayon
//! scheduler maps the per-element bodies over parallel chunk iterators.

use paradmm_graph::{EdgeParams, FactorGraph, FactorId, VarId};
use paradmm_prox::{ProxCtx, ProxOp};

/// The five kinds of sweep in one ADMM iteration, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpdateKind {
    /// Proximal-operator sweep over factors.
    X,
    /// `m = x + u` sweep over edges.
    M,
    /// Weighted-average sweep over variable nodes.
    Z,
    /// Dual-ascent sweep over edges.
    U,
    /// `n = z − u` sweep over edges.
    N,
}

impl UpdateKind {
    /// All kinds in execution order.
    pub const ALL: [UpdateKind; 5] = [
        UpdateKind::X,
        UpdateKind::M,
        UpdateKind::Z,
        UpdateKind::U,
        UpdateKind::N,
    ];

    /// Index 0..5 in execution order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            UpdateKind::X => 0,
            UpdateKind::M => 1,
            UpdateKind::Z => 2,
            UpdateKind::U => 3,
            UpdateKind::N => 4,
        }
    }

    /// Short lowercase label matching the paper's figures ("x-update", …).
    pub fn label(self) -> &'static str {
        match self {
            UpdateKind::X => "x",
            UpdateKind::M => "m",
            UpdateKind::Z => "z",
            UpdateKind::U => "u",
            UpdateKind::N => "n",
        }
    }
}

/// Runs the proximal operator of one factor: reads the factor's contiguous
/// block of `n_all`, writes its block of `x_factor` (which must be exactly
/// that factor's slice of the global x array).
#[inline]
pub fn x_update_factor(
    graph: &FactorGraph,
    prox: &dyn ProxOp,
    params: &EdgeParams,
    n_all: &[f64],
    x_factor: &mut [f64],
    a: FactorId,
) {
    let d = graph.dims();
    let er = graph.factor_edge_range(a);
    let n = &n_all[er.start * d..er.end * d];
    let rho = &params.rho[er];
    debug_assert_eq!(x_factor.len(), n.len());
    let mut ctx = ProxCtx::new(n, rho, x_factor, d);
    prox.prox(&mut ctx);
}

/// x-update over a contiguous factor range `[a_lo, a_hi)`; `x_all` is the
/// full global x array.
pub fn x_update_range(
    graph: &FactorGraph,
    proxes: &[Box<dyn ProxOp>],
    params: &EdgeParams,
    n_all: &[f64],
    x_all: &mut [f64],
    a_lo: usize,
    a_hi: usize,
) {
    let d = graph.dims();
    for a in a_lo..a_hi {
        let fa = FactorId::from_usize(a);
        let er = graph.factor_edge_range(fa);
        let x_factor = &mut x_all[er.start * d..er.end * d];
        x_update_factor(graph, &*proxes[a], params, n_all, x_factor, fa);
    }
}

/// m-update over flat component range `[lo, hi)`: `m = x + u`.
#[inline]
pub fn m_update_range(x: &[f64], u: &[f64], m: &mut [f64], lo: usize, hi: usize) {
    for j in lo..hi {
        m[j] = x[j] + u[j];
    }
}

/// Fused x+m over a contiguous factor range `[a_lo, a_hi)`: each factor
/// runs its proximal operator and immediately forms `m = x + u` for its
/// own (contiguous) edge block.
///
/// Bit-identical to running [`x_update_range`] over all factors followed
/// by [`m_update_range`] over all edges: the x sweep reads only `n`, the
/// m body of edge `e` reads only `x_e` (just written by the same factor)
/// and `u_e` (written by neither sweep) — so interleaving per factor
/// reorders no floating-point operation within any single output value.
/// One pass fewer over the `x` array, and one synchronization point
/// fewer per iteration in barrier-style backends.
#[allow(clippy::too_many_arguments)] // mirrors the sweep signature family
pub fn xm_update_range(
    graph: &FactorGraph,
    proxes: &[Box<dyn ProxOp>],
    params: &EdgeParams,
    n_all: &[f64],
    u_all: &[f64],
    x_all: &mut [f64],
    m_all: &mut [f64],
    a_lo: usize,
    a_hi: usize,
) {
    let d = graph.dims();
    for a in a_lo..a_hi {
        let fa = FactorId::from_usize(a);
        let er = graph.factor_edge_range(fa);
        let (flo, fhi) = (er.start * d, er.end * d);
        x_update_factor(graph, &*proxes[a], params, n_all, &mut x_all[flo..fhi], fa);
        for j in flo..fhi {
            m_all[j] = x_all[j] + u_all[j];
        }
    }
}

/// z-update body for a single variable node `b`:
/// `z_b = Σ_{e∈∂b} ρ_e m_e / Σ_{e∈∂b} ρ_e`, written into `z_b_out` (that
/// variable's `dims`-slice of the global z array). Variables of degree 0
/// are left unchanged (no information flows to them).
#[inline]
pub fn z_update_var(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_b_out: &mut [f64],
    b: VarId,
) {
    let d = graph.dims();
    let edges = graph.var_edges(b);
    if edges.is_empty() {
        return;
    }
    let mut rho_sum = 0.0;
    z_b_out.fill(0.0);
    for &e in edges {
        let rho = params.rho(e);
        rho_sum += rho;
        let me = &m_all[e.idx() * d..(e.idx() + 1) * d];
        for c in 0..d {
            z_b_out[c] += rho * me[c];
        }
    }
    let inv = 1.0 / rho_sum;
    for c in 0..d {
        z_b_out[c] *= inv;
    }
}

/// z-update over a contiguous variable range `[b_lo, b_hi)`; `z_all` is the
/// full global z array.
pub fn z_update_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_all: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    let d = graph.dims();
    for b in b_lo..b_hi {
        let zb = &mut z_all[b * d..(b + 1) * d];
        z_update_var(graph, params, m_all, zb, VarId::from_usize(b));
    }
}

/// z-update body for the double-buffered (swap) schedule: variable `b`'s
/// fresh average is written into `z_b_out` (a slice of the *write*
/// buffer, stale by two iterations after a [`paradmm_graph::VarStore::swap_z`]);
/// a degree-0 variable instead copies its value forward from `z_old_b`
/// (its slice of the previous iterate), reproducing the copying
/// schedule's "left unchanged" semantics bit for bit.
#[inline]
pub fn z_update_swapped_var(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_old_b: &[f64],
    z_b_out: &mut [f64],
    b: VarId,
) {
    if graph.var_edges(b).is_empty() {
        z_b_out.copy_from_slice(z_old_b);
    } else {
        z_update_var(graph, params, m_all, z_b_out, b);
    }
}

/// z-update over a contiguous variable range `[b_lo, b_hi)` for the
/// double-buffered schedule: `z_old` is the full previous-iterate buffer
/// (`z_prev` after the swap), `z_new` the full write buffer.
pub fn z_update_swapped_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    m_all: &[f64],
    z_old: &[f64],
    z_new: &mut [f64],
    b_lo: usize,
    b_hi: usize,
) {
    let d = graph.dims();
    for b in b_lo..b_hi {
        let r = b * d..(b + 1) * d;
        z_update_swapped_var(
            graph,
            params,
            m_all,
            &z_old[r.clone()],
            &mut z_new[r],
            VarId::from_usize(b),
        );
    }
}

/// u-update body for a single edge `e`:
/// `u_e ← u_e + α_e (x_e − z_{var(e)})`, written into `u_e_out`.
#[inline]
pub fn u_update_edge(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_e_out: &mut [f64],
    e: paradmm_graph::EdgeId,
) {
    let d = graph.dims();
    let alpha = params.alpha(e);
    let b = graph.edge_var(e);
    let xe = &x_all[e.idx() * d..(e.idx() + 1) * d];
    let zb = &z_all[b.idx() * d..(b.idx() + 1) * d];
    for c in 0..d {
        u_e_out[c] += alpha * (xe[c] - zb[c]);
    }
}

/// u-update over a contiguous edge range `[e_lo, e_hi)`.
pub fn u_update_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_all: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let d = graph.dims();
    for e in e_lo..e_hi {
        let ue = &mut u_all[e * d..(e + 1) * d];
        u_update_edge(
            graph,
            params,
            x_all,
            z_all,
            ue,
            paradmm_graph::EdgeId::from_usize(e),
        );
    }
}

/// Fused u+n body for a single edge `e`: the dual ascent
/// `u_e ← u_e + α_e (x_e − z_{var(e)})` immediately followed by
/// `n_e = z_{var(e)} − u_e` on the freshly written dual.
///
/// `n_e` depends only on `z` (read-only in both sweeps) and on `u_e` of
/// the *same* edge, so fusing the two edge sweeps into one pass is
/// bit-identical to running [`u_update_edge`] over all edges and then
/// [`n_update_edge`] over all edges — while costing one less
/// synchronization point per iteration in barrier-style backends and one
/// less pass over the `u` array everywhere.
#[inline]
pub fn un_update_edge(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_e_out: &mut [f64],
    n_e_out: &mut [f64],
    e: paradmm_graph::EdgeId,
) {
    let d = graph.dims();
    let alpha = params.alpha(e);
    let b = graph.edge_var(e);
    let xe = &x_all[e.idx() * d..(e.idx() + 1) * d];
    let zb = &z_all[b.idx() * d..(b.idx() + 1) * d];
    for c in 0..d {
        u_e_out[c] += alpha * (xe[c] - zb[c]);
        n_e_out[c] = zb[c] - u_e_out[c];
    }
}

/// Fused u+n update over a contiguous edge range `[e_lo, e_hi)`; `u_all`
/// and `n_all` are the full global arrays.
#[allow(clippy::too_many_arguments)] // mirrors the sweep signature family
pub fn un_update_range(
    graph: &FactorGraph,
    params: &EdgeParams,
    x_all: &[f64],
    z_all: &[f64],
    u_all: &mut [f64],
    n_all: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let d = graph.dims();
    for e in e_lo..e_hi {
        let lo = e * d;
        un_update_edge(
            graph,
            params,
            x_all,
            z_all,
            &mut u_all[lo..lo + d],
            &mut n_all[lo..lo + d],
            paradmm_graph::EdgeId::from_usize(e),
        );
    }
}

/// n-update body for a single edge `e`: `n_e = z_{var(e)} − u_e`.
#[inline]
pub fn n_update_edge(
    graph: &FactorGraph,
    z_all: &[f64],
    u_all: &[f64],
    n_e_out: &mut [f64],
    e: paradmm_graph::EdgeId,
) {
    let d = graph.dims();
    let b = graph.edge_var(e);
    let zb = &z_all[b.idx() * d..(b.idx() + 1) * d];
    let ue = &u_all[e.idx() * d..(e.idx() + 1) * d];
    for c in 0..d {
        n_e_out[c] = zb[c] - ue[c];
    }
}

/// n-update over a contiguous edge range `[e_lo, e_hi)`.
pub fn n_update_range(
    graph: &FactorGraph,
    z_all: &[f64],
    u_all: &[f64],
    n_all: &mut [f64],
    e_lo: usize,
    e_hi: usize,
) {
    let d = graph.dims();
    for e in e_lo..e_hi {
        let ne = &mut n_all[e * d..(e + 1) * d];
        n_update_edge(
            graph,
            z_all,
            u_all,
            ne,
            paradmm_graph::EdgeId::from_usize(e),
        );
    }
}

/// Splits `data` (the global x array) into one mutable slice per factor,
/// in factor order. The slices partition `data` exactly because factor
/// edge ranges are contiguous and cover all edges.
pub fn split_factor_blocks<'a>(graph: &FactorGraph, mut data: &'a mut [f64]) -> Vec<&'a mut [f64]> {
    let d = graph.dims();
    let mut out = Vec::with_capacity(graph.num_factors());
    for a in graph.factors() {
        let len = graph.factor_degree(a) * d;
        let (head, tail) = data.split_at_mut(len);
        out.push(head);
        data = tail;
    }
    debug_assert!(data.is_empty());
    out
}

/// Evenly partitions `n_items` across `n_parts`, mirroring the paper's
/// `AssignThreads`: the first `n_items % n_parts` parts get
/// `⌈n/p⌉` items, the rest `⌊n/p⌋`, so sizes differ by at most one and
/// work is front-loaded.
///
/// When `n_parts > n_items`, each of the first `n_items` parts gets
/// exactly one item and every trailing part is the empty range
/// `(n_items, n_items)`. The old `i·n/p` formula instead scattered the
/// items over arbitrary middle parts, leaving leading Barrier workers
/// spinning at every phase barrier with no work while loaded workers sat
/// further down the thread list.
///
/// This is the single balanced-split helper shared by every static
/// partitioner: the barrier backend's per-thread sweep ranges and the
/// sharded backend's halo-reduce tiling both call it, so the
/// front-loading regression tests below guard both call sites (the
/// sharded one additionally via
/// `sharded::tests::more_shards_than_halo_vars_front_loads_reduce`).
#[inline]
pub fn assign_range(n_items: usize, part: usize, n_parts: usize) -> (usize, usize) {
    debug_assert!(part < n_parts, "part {part} out of range for {n_parts}");
    let base = n_items / n_parts;
    let rem = n_items % n_parts;
    let lo = part * base + part.min(rem);
    let hi = lo + base + usize::from(part < rem);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradmm_graph::{GraphBuilder, VarStore};
    use paradmm_prox::ZeroProx;

    fn chain(dims: usize) -> (FactorGraph, EdgeParams) {
        // v0 -f0- v1 -f1- v2, factors of degree 2.
        let mut b = GraphBuilder::new(dims);
        let vs = b.add_vars(3);
        b.add_factor(&[vs[0], vs[1]]);
        b.add_factor(&[vs[1], vs[2]]);
        let g = b.build();
        let p = EdgeParams::uniform(&g, 1.0, 1.0);
        (g, p)
    }

    #[test]
    fn update_kind_ordering() {
        assert_eq!(UpdateKind::ALL[0].index(), 0);
        assert_eq!(UpdateKind::ALL[4].label(), "n");
    }

    #[test]
    fn m_update_adds() {
        let x = [1.0, 2.0];
        let u = [10.0, 20.0];
        let mut m = [0.0; 2];
        m_update_range(&x, &u, &mut m, 0, 2);
        assert_eq!(m, [11.0, 22.0]);
    }

    #[test]
    fn z_update_weighted_average() {
        let (g, mut p) = chain(1);
        // Variable 1 touches edges 1 (factor 0) and 2 (factor 1).
        p.rho = vec![1.0, 2.0, 3.0, 1.0];
        let m = [0.0, 6.0, 12.0, 0.0];
        let mut z = [0.0; 3];
        z_update_range(&g, &p, &m, &mut z, 0, 3);
        // z1 = (2·6 + 3·12)/(2+3) = 48/5
        assert!((z[1] - 9.6).abs() < 1e-12);
        // z0 from edge 0 alone, z2 from edge 3 alone.
        assert_eq!(z[0], 0.0);
        assert_eq!(z[2], 0.0);
    }

    #[test]
    fn z_update_skips_isolated_var() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_var();
        let _iso = b.add_var();
        b.add_factor(&[v0]);
        let g = b.build();
        let p = EdgeParams::uniform(&g, 1.0, 1.0);
        let m = [5.0];
        let mut z = [0.0, 7.0];
        z_update_range(&g, &p, &m, &mut z, 0, 2);
        assert_eq!(z, [5.0, 7.0]); // isolated var untouched
    }

    #[test]
    fn u_update_accumulates_scaled_residual() {
        let (g, mut p) = chain(1);
        p.alpha = vec![0.5; 4];
        let x = [2.0, 0.0, 0.0, 0.0];
        let z = [1.0, 0.0, 0.0];
        let mut u = [1.0, 0.0, 0.0, 0.0];
        u_update_range(&g, &p, &x, &z, &mut u, 0, 4);
        // edge 0 targets var 0: u += 0.5·(2−1) = 1.5
        assert!((u[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn n_update_is_z_minus_u() {
        let (g, _) = chain(1);
        let z = [1.0, 2.0, 3.0];
        let u = [0.5, 0.5, 0.5, 0.5];
        let mut n = [0.0; 4];
        n_update_range(&g, &z, &u, &mut n, 0, 4);
        // edges target vars 0,1,1,2.
        assert_eq!(n, [0.5, 1.5, 1.5, 2.5]);
    }

    #[test]
    fn x_update_runs_prox_per_factor() {
        let (g, p) = chain(2);
        let mut store = VarStore::zeros(&g);
        for (i, v) in store.n.iter_mut().enumerate() {
            *v = i as f64;
        }
        let proxes: Vec<Box<dyn ProxOp>> = vec![Box::new(ZeroProx), Box::new(ZeroProx)];
        let n_snapshot = store.n.clone();
        x_update_range(&g, &proxes, &p, &n_snapshot, &mut store.x, 0, 2);
        assert_eq!(store.x, store.n); // ZeroProx copies n into x
    }

    #[test]
    fn split_factor_blocks_partitions() {
        let (g, _) = chain(3);
        let mut data = vec![0.0; g.num_edges() * 3];
        let blocks = split_factor_blocks(&g, &mut data);
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].len(), 6);
        assert_eq!(blocks[1].len(), 6);
    }

    #[test]
    fn fused_un_matches_separate_sweeps_bitwise() {
        let (g, mut p) = chain(2);
        p.alpha = vec![0.3, 0.7, 1.1, 0.9];
        p.rho = vec![1.0, 2.0, 0.5, 3.0];
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.9).sin()).collect();
        let z: Vec<f64> = (0..6).map(|i| (i as f64 * 0.4).cos()).collect();
        let u0: Vec<f64> = (0..8).map(|i| i as f64 * 0.25 - 1.0).collect();

        let mut u_sep = u0.clone();
        let mut n_sep = vec![0.0; 8];
        u_update_range(&g, &p, &x, &z, &mut u_sep, 0, 4);
        n_update_range(&g, &z, &u_sep, &mut n_sep, 0, 4);

        let mut u_fused = u0;
        let mut n_fused = vec![0.0; 8];
        un_update_range(&g, &p, &x, &z, &mut u_fused, &mut n_fused, 0, 4);

        assert_eq!(u_sep, u_fused);
        assert_eq!(n_sep, n_fused);
    }

    #[test]
    fn fused_xm_matches_separate_sweeps_bitwise() {
        let (g, mut p) = chain(2);
        p.rho = vec![1.0, 2.0, 0.5, 3.0];
        let proxes: Vec<Box<dyn ProxOp>> = vec![Box::new(ZeroProx), Box::new(ZeroProx)];
        let n: Vec<f64> = (0..8).map(|i| (i as f64 * 0.7).sin()).collect();
        let u: Vec<f64> = (0..8).map(|i| (i as f64 * 0.3).cos()).collect();

        let mut x_sep = vec![0.0; 8];
        let mut m_sep = vec![0.0; 8];
        x_update_range(&g, &proxes, &p, &n, &mut x_sep, 0, 2);
        m_update_range(&x_sep, &u, &mut m_sep, 0, 8);

        let mut x_fused = vec![0.0; 8];
        let mut m_fused = vec![0.0; 8];
        xm_update_range(&g, &proxes, &p, &n, &u, &mut x_fused, &mut m_fused, 0, 2);

        assert_eq!(x_sep, x_fused);
        assert_eq!(m_sep, m_fused);
    }

    #[test]
    fn swapped_z_matches_copy_schedule_and_carries_isolated_vars() {
        let mut b = GraphBuilder::new(1);
        let v0 = b.add_var();
        let _iso = b.add_var();
        let v2 = b.add_var();
        b.add_factor(&[v0, v2]);
        let g = b.build();
        let p = EdgeParams::uniform(&g, 2.0, 1.0);
        let m = [5.0, 3.0];

        // Copying schedule: snapshot then in-place update.
        let mut z_copy = [1.0, 7.0, -2.0];
        z_update_range(&g, &p, &m, &mut z_copy, 0, 3);

        // Swap schedule: old iterate in z_old, garbage in the write buffer.
        let z_old = [1.0, 7.0, -2.0];
        let mut z_new = [999.0; 3];
        z_update_swapped_range(&g, &p, &m, &z_old, &mut z_new, 0, 3);
        assert_eq!(z_new, z_copy);
        assert_eq!(z_new[1], 7.0, "isolated var carried forward");
    }

    #[test]
    fn assign_range_covers_exactly() {
        for n in [0usize, 1, 7, 100] {
            for p in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for i in 0..p {
                    let (lo, hi) = assign_range(n, i, p);
                    assert_eq!(lo, prev_hi);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(covered, n, "n={n} p={p}");
                assert_eq!(prev_hi, n);
            }
        }
    }

    #[test]
    fn assign_range_sizes_differ_by_at_most_one() {
        for n in [1usize, 5, 17, 100, 101] {
            for p in [1usize, 2, 3, 7, 16] {
                let sizes: Vec<usize> = (0..p)
                    .map(|i| {
                        let (lo, hi) = assign_range(n, i, p);
                        hi - lo
                    })
                    .collect();
                let max = *sizes.iter().max().unwrap();
                let min = *sizes.iter().min().unwrap();
                assert!(max - min <= 1, "n={n} p={p} sizes={sizes:?}");
            }
        }
    }

    /// Regression: with more parts than items, the first `n_items` parts
    /// must each own exactly one item and every trailing part must be
    /// empty — the old `i·n/p` split scattered the items across middle
    /// parts, so Barrier workers at the front of the thread list spun on
    /// empty ranges while the work sat elsewhere.
    #[test]
    fn assign_range_more_parts_than_items_front_loads() {
        for (n, p) in [(0usize, 4usize), (1, 8), (3, 8), (5, 7)] {
            for i in 0..p {
                let (lo, hi) = assign_range(n, i, p);
                if i < n {
                    assert_eq!((lo, hi), (i, i + 1), "n={n} p={p} part={i}");
                } else {
                    assert_eq!((lo, hi), (n, n), "n={n} p={p} part={i}");
                }
            }
        }
    }
}
