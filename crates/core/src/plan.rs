//! The `SweepPlan` IR: one ADMM iteration compiled into a list of fused
//! *passes* executed by every backend.
//!
//! The paper's Algorithm 2 is five embarrassingly parallel sweeps
//! (x, m, z, u, n) separated by synchronization points, and its §V
//! experiments show that synchronization — not arithmetic — is what
//! separates the OpenMP approaches. Historically every backend in this
//! repo hardcoded the five-sweep schedule (only the work-stealing
//! backend hand-fused u+n), so each fusion or chunking tweak had to be
//! re-implemented once per backend. A [`SweepPlan`] makes the schedule
//! *data*:
//!
//! * a **pass** ([`Pass`]) is a fusion of adjacent sweeps over one index
//!   space — `x+m` fused over factor-edge ranges, `z` alone over
//!   variables (with a double-buffered `z`/`z_prev` pointer swap instead
//!   of the per-iteration copy), `u+n` fused over edges;
//! * passes are separated by implicit barriers, so
//!   [`SweepPlan::barriers_per_iteration`] *is* the pass count — the
//!   default fused plan costs 3 synchronization points per iteration
//!   instead of the seed's 4–5;
//! * each pass carries a **chunk size** (the claim granularity of
//!   dynamic backends) and an optional **measured cost profile** from
//!   which static backends derive cost-balanced per-worker splits
//!   ([`Pass::split`]) — the paper's future-work item 2 ("automatic
//!   per-operator tuning") made concrete.
//!
//! Fusion legality rests on Algorithm 2's Jacobi data flow: within a
//! pass, every task reads only arrays the pass does not write (the
//! `x+m` pass writes a factor's own x/m block from `n`/`u`; the `u+n`
//! pass writes an edge's own u/n from `x`/`z` and its freshly written
//! u), so *any* legal plan — fused or unfused, any chunking, any split
//! — produces iterates **bit-identical** to the seed five-sweep serial
//! schedule. `tests/plan_equivalence.rs` property-tests exactly that.

use std::time::Instant;

use paradmm_graph::{FactorGraph, FactorId, VarStore};
use paradmm_prox::ProxCtx;

use crate::kernels::{self, UpdateKind};
use crate::problem::AdmmProblem;
use crate::timing::SweepCosts;

/// The index space a pass sweeps over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassSpace {
    /// One task per factor (x-update; fused x+m).
    Factors,
    /// One task per variable node (z-update).
    Vars,
    /// One task per edge (m, u, n; fused u+n).
    Edges,
}

/// What one pass computes: a single sweep, or a legal fusion of adjacent
/// sweeps over the same index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Proximal-operator sweep over factors.
    X,
    /// `m = x + u` sweep over edges.
    M,
    /// Fused x+m over factor-edge ranges: each factor runs its proximal
    /// operator and immediately forms `m = x + u` for its own edges.
    Xm,
    /// Consensus average over variables, with the `z`/`z_prev` buffer
    /// swap standing in for the per-iteration snapshot copy.
    Z,
    /// Dual-ascent sweep over edges.
    U,
    /// `n = z − u` sweep over edges.
    N,
    /// Fused u+n over edges (see [`kernels::un_update_edge`]).
    Un,
}

impl PassKind {
    /// The index space this pass sweeps.
    pub fn space(self) -> PassSpace {
        match self {
            PassKind::X | PassKind::Xm => PassSpace::Factors,
            PassKind::Z => PassSpace::Vars,
            PassKind::M | PassKind::U | PassKind::N | PassKind::Un => PassSpace::Edges,
        }
    }

    /// The constituent sweeps, in execution order.
    pub fn kinds(self) -> &'static [UpdateKind] {
        match self {
            PassKind::X => &[UpdateKind::X],
            PassKind::M => &[UpdateKind::M],
            PassKind::Xm => &[UpdateKind::X, UpdateKind::M],
            PassKind::Z => &[UpdateKind::Z],
            PassKind::U => &[UpdateKind::U],
            PassKind::N => &[UpdateKind::N],
            PassKind::Un => &[UpdateKind::U, UpdateKind::N],
        }
    }

    /// The [`UpdateKind`] a fused pass's time is accounted under in
    /// [`crate::UpdateTimings`] — the first constituent, matching the
    /// precedent set by the seed work-stealing backend (fused u+n under
    /// `U`).
    pub fn timing_kind(self) -> UpdateKind {
        self.kinds()[0]
    }

    /// Short stable label (`"x"`, `"x+m"`, `"u+n"`, …).
    pub fn label(self) -> &'static str {
        match self {
            PassKind::X => "x",
            PassKind::M => "m",
            PassKind::Xm => "x+m",
            PassKind::Z => "z",
            PassKind::U => "u",
            PassKind::N => "n",
            PassKind::Un => "u+n",
        }
    }
}

/// One pass of a [`SweepPlan`]: the fused kernel, its index-space size,
/// the chunk granularity for dynamic (claim-based) backends, and an
/// optional measured per-item cost profile for static splits.
#[derive(Debug, Clone)]
pub struct Pass {
    kind: PassKind,
    items: usize,
    chunk: usize,
    /// Cumulative cost prefix (`len == items + 1`, strictly increasing,
    /// `[0] == 0`). `None` means uniform cost per item.
    cum_cost: Option<Vec<f64>>,
}

/// Cost floor so weighted prefixes stay strictly increasing even when a
/// measured cost underflows to zero.
const MIN_ITEM_COST: f64 = 1e-12;

impl Pass {
    /// A pass whose items all cost the same; static splits fall back to
    /// the count-balanced [`kernels::assign_range`].
    ///
    /// # Panics
    /// If `chunk == 0`.
    pub fn uniform(kind: PassKind, items: usize, chunk: usize) -> Self {
        assert!(chunk >= 1, "pass chunk size must be positive");
        Pass {
            kind,
            items,
            chunk,
            cum_cost: None,
        }
    }

    /// A pass with measured per-item costs; static splits balance
    /// cumulative cost instead of item count. Non-positive costs are
    /// floored so the prefix stays strictly increasing.
    ///
    /// # Panics
    /// If `chunk == 0`.
    pub fn weighted(kind: PassKind, chunk: usize, costs: &[f64]) -> Self {
        assert!(chunk >= 1, "pass chunk size must be positive");
        let mut cum = Vec::with_capacity(costs.len() + 1);
        let mut acc = 0.0f64;
        cum.push(0.0);
        for &c in costs {
            acc += c.max(MIN_ITEM_COST);
            cum.push(acc);
        }
        Pass {
            kind,
            items: costs.len(),
            chunk,
            cum_cost: Some(cum),
        }
    }

    /// The fused kernel this pass runs.
    #[inline]
    pub fn kind(&self) -> PassKind {
        self.kind
    }

    /// Number of items (factors / variables / edges) in the pass.
    #[inline]
    pub fn items(&self) -> usize {
        self.items
    }

    /// Items a dynamic backend claims per atomic increment.
    #[inline]
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Whether the pass carries a measured cost profile.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.cum_cost.is_some()
    }

    /// Total measured cost (items, when uniform).
    pub fn total_cost(&self) -> f64 {
        match &self.cum_cost {
            Some(c) => *c.last().unwrap_or(&0.0),
            None => self.items as f64,
        }
    }

    /// The static range `[lo, hi)` worker `part` of `n_parts` owns:
    /// count-balanced via [`kernels::assign_range`] for uniform passes,
    /// cumulative-cost-balanced for weighted ones. Ranges tile
    /// `[0, items)` exactly for any `n_parts`.
    ///
    /// # Panics
    /// If `part >= n_parts`.
    pub fn split(&self, part: usize, n_parts: usize) -> (usize, usize) {
        assert!(part < n_parts, "part {part} out of range for {n_parts}");
        match &self.cum_cost {
            None => kernels::assign_range(self.items, part, n_parts),
            Some(cum) => {
                let total = *cum.last().expect("prefix is never empty");
                let bound = |i: usize| -> usize {
                    if i == 0 {
                        0
                    } else if i == n_parts {
                        self.items
                    } else {
                        let target = total * i as f64 / n_parts as f64;
                        // Number of items whose cumulative end ≤ target;
                        // cum[1..] is strictly increasing so boundaries
                        // are monotone in i.
                        cum[1..].partition_point(|&c| c <= target)
                    }
                };
                (bound(part), bound(part + 1))
            }
        }
    }
}

/// Why a pass list does not form a legal plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// Flattening the passes' constituent sweeps did not yield the exact
    /// x→m→z→u→n order each exactly once.
    WrongSweepOrder {
        /// The flattened constituent order that was found.
        found: Vec<UpdateKind>,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::WrongSweepOrder { found } => write!(
                f,
                "passes must cover the sweeps x,m,z,u,n in order exactly once; found {:?}",
                found
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A compiled iteration schedule: passes in execution order, separated
/// by implicit barriers. Built once per problem (by
/// [`SweepPlan::fused`], [`SweepPlan::unfused`], or a measuring
/// [`Planner`]) and executed by every [`crate::SweepExecutor`].
#[derive(Debug, Clone)]
pub struct SweepPlan {
    passes: Vec<Pass>,
}

impl SweepPlan {
    /// Builds a plan from explicit passes, validating legality: the
    /// flattened constituent sweeps must be exactly `x, m, z, u, n` in
    /// order (each once), i.e. the pass list is one of
    /// `[x|m]…`, `[x+m]…` × `[z]` × `[u|n]…`, `[u+n]…`.
    pub fn from_passes(passes: Vec<Pass>) -> Result<Self, PlanError> {
        let found: Vec<UpdateKind> = passes
            .iter()
            .flat_map(|p| p.kind().kinds())
            .copied()
            .collect();
        if found != UpdateKind::ALL {
            return Err(PlanError::WrongSweepOrder { found });
        }
        Ok(SweepPlan { passes })
    }

    /// The default fused schedule: `x+m | z | u+n`, three passes (and
    /// thus three barriers) per iteration, uniform chunks. This is what
    /// every backend executes when the problem carries no explicit plan.
    pub fn fused(problem: &AdmmProblem) -> Self {
        let g = problem.graph();
        let c = crate::backend::DEFAULT_STEAL_CHUNK;
        SweepPlan {
            passes: vec![
                Pass::uniform(PassKind::Xm, g.num_factors(), c),
                Pass::uniform(PassKind::Z, g.num_vars(), c),
                Pass::uniform(PassKind::Un, g.num_edges(), c),
            ],
        }
    }

    /// The seed five-sweep schedule: `x | m | z | u | n`, five passes,
    /// uniform chunks — the reference every fused plan is bit-identical
    /// to, kept constructible for ablations and equivalence tests.
    pub fn unfused(problem: &AdmmProblem) -> Self {
        let g = problem.graph();
        let c = crate::backend::DEFAULT_STEAL_CHUNK;
        SweepPlan {
            passes: vec![
                Pass::uniform(PassKind::X, g.num_factors(), c),
                Pass::uniform(PassKind::M, g.num_edges(), c),
                Pass::uniform(PassKind::Z, g.num_vars(), c),
                Pass::uniform(PassKind::U, g.num_edges(), c),
                Pass::uniform(PassKind::N, g.num_edges(), c),
            ],
        }
    }

    /// The plan `problem` carries, or (owned) the default fused schedule
    /// — the one resolution rule every backend shares.
    pub fn resolve(problem: &AdmmProblem) -> std::borrow::Cow<'_, SweepPlan> {
        match problem.plan() {
            Some(p) => std::borrow::Cow::Borrowed(p),
            None => std::borrow::Cow::Owned(SweepPlan::fused(problem)),
        }
    }

    /// The passes, in execution order.
    #[inline]
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// Synchronization points a barrier-style backend pays per
    /// iteration: one per pass (the last barrier doubles as the
    /// iteration boundary — the next iteration's first pass reads what
    /// the final pass wrote).
    #[inline]
    pub fn barriers_per_iteration(&self) -> usize {
        self.passes.len()
    }

    /// Whether both fusions are applied (the three-pass schedule).
    pub fn is_fused(&self) -> bool {
        self.passes.iter().any(|p| p.kind() == PassKind::Xm)
            && self.passes.iter().any(|p| p.kind() == PassKind::Un)
    }

    /// Whether this plan's index-space sizes match `graph` — the shape
    /// gate [`AdmmProblem::set_plan`] enforces.
    pub fn matches(&self, graph: &FactorGraph) -> bool {
        self.passes.iter().all(|p| {
            p.items()
                == match p.kind().space() {
                    PassSpace::Factors => graph.num_factors(),
                    PassSpace::Vars => graph.num_vars(),
                    PassSpace::Edges => graph.num_edges(),
                }
        })
    }

    /// The first pass sweeping the factor space (the activation unit of
    /// the asynchronous backend).
    pub fn factor_pass(&self) -> &Pass {
        self.passes
            .iter()
            .find(|p| p.kind().space() == PassSpace::Factors)
            .expect("every legal plan has a factor pass")
    }

    /// One-line human summary, e.g.
    /// `x+m[n=12,chunk=64,weighted] | z[n=7,chunk=64] | u+n[n=24,chunk=64]`.
    pub fn summary(&self) -> String {
        self.passes
            .iter()
            .map(|p| {
                format!(
                    "{}[n={},chunk={}{}]",
                    p.kind().label(),
                    p.items(),
                    p.chunk(),
                    if p.is_weighted() { ",weighted" } else { "" }
                )
            })
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

/// Builds measured-cost [`SweepPlan`]s: times every proximal operator
/// and every element-wise sweep on scratch state, then chooses chunk
/// sizes (so one dynamic claim costs roughly
/// [`Planner::target_chunk_seconds`]) and attaches per-factor cost
/// profiles so static backends split the x+m pass by cumulative operator
/// cost instead of factor count — the difference between one worker
/// owning every expensive operator and each worker owning its fair share
/// (see `examples/heterogeneous_prox.rs`).
#[derive(Debug, Clone, Copy)]
pub struct Planner {
    /// Timing repetitions per factor; the minimum is kept (noise on a
    /// shared machine is strictly additive).
    pub reps: usize,
    /// Desired cost of one dynamically claimed chunk, in seconds.
    pub target_chunk_seconds: f64,
}

impl Default for Planner {
    fn default() -> Self {
        Planner {
            reps: 3,
            target_chunk_seconds: 10e-6,
        }
    }
}

/// Chunk-size clamp: small enough that stragglers shed load, large
/// enough that the claim `fetch_add` stays noise.
const MIN_CHUNK_ITEMS: usize = 4;
const MAX_CHUNK_ITEMS: usize = 16_384;

impl Planner {
    /// A planner with default measurement settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures `problem` and compiles the fused three-pass schedule
    /// with measured chunk sizes and a cost-weighted x+m split profile.
    /// The measurement runs on scratch buffers — the caller's state is
    /// never touched.
    pub fn plan(&self, problem: &AdmmProblem) -> SweepPlan {
        let costs = self.measure(problem);
        self.plan_from_costs(problem, &costs)
    }

    /// Compiles the fused schedule from already-measured costs (so
    /// diagnostics can report the same numbers the plan was built from).
    pub fn plan_from_costs(&self, problem: &AdmmProblem, costs: &SweepCosts) -> SweepPlan {
        let g = problem.graph();
        let (nf, nv, ne) = (g.num_factors(), g.num_vars(), g.num_edges());

        // x+m: per-factor cost = measured prox cost + streaming m cost of
        // the factor's own edges.
        let xm_costs: Vec<f64> = (0..nf)
            .map(|a| {
                let deg = g.factor_degree(FactorId::from_usize(a)) as f64;
                costs.factor_seconds[a] + deg * costs.m_per_edge
            })
            .collect();
        let xm_total: f64 = xm_costs.iter().sum();
        let xm_chunk = self.chunk_for(xm_total, nf);
        // A weighted profile only earns its binary searches when the
        // operators are actually heterogeneous.
        let xm_pass = if Self::is_imbalanced(&xm_costs) {
            Pass::weighted(PassKind::Xm, xm_chunk, &xm_costs)
        } else {
            Pass::uniform(PassKind::Xm, nf, xm_chunk)
        };

        // z: cost per variable scales with its degree (the weighted
        // average folds one message per incident edge). Degrees are free
        // to read, so hub-heavy graphs get cost-balanced splits without
        // extra measurement. `z_per_var` is the measured *mean* (degree
        // effects already averaged in), so the degree weights are
        // normalized to keep the pass total at the measured
        // `nv · z_per_var` — otherwise the chunk sizing would see a
        // total inflated by the mean degree.
        let weight_sum: f64 = g.vars().map(|b| g.var_degree(b) as f64 + 1.0).sum();
        let z_total = costs.z_per_var * nv as f64;
        let z_scale = if weight_sum > 0.0 {
            z_total / weight_sum
        } else {
            0.0
        };
        let z_costs: Vec<f64> = g
            .vars()
            .map(|b| (g.var_degree(b) as f64 + 1.0) * z_scale)
            .collect();
        let z_chunk = self.chunk_for(z_total, nv);
        let z_pass = if Self::is_imbalanced(&z_costs) {
            Pass::weighted(PassKind::Z, z_chunk, &z_costs)
        } else {
            Pass::uniform(PassKind::Z, nv, z_chunk)
        };

        // u+n: homogeneous streaming work per edge.
        let un_total = (costs.u_per_edge + costs.n_per_edge) * ne as f64;
        let un_pass = Pass::uniform(PassKind::Un, ne, self.chunk_for(un_total, ne));

        SweepPlan {
            passes: vec![xm_pass, z_pass, un_pass],
        }
    }

    /// Times every proximal operator and the four element-wise sweeps on
    /// scratch state (min over [`Planner::reps`] repetitions).
    ///
    /// The sweeps run through the same dispatch the executors use — under
    /// [`crate::kernels::KernelDispatch::Specialized`] that is the
    /// fixed-`dims` bodies, with u/n driven by the dense
    /// [`EdgeStream`](paradmm_graph::EdgeStream) — so the measured
    /// per-item costs (and the chunk sizes / weighted splits derived from
    /// them) always describe the kernels that will actually execute.
    pub fn measure(&self, problem: &AdmmProblem) -> SweepCosts {
        let g = problem.graph();
        let d = g.dims();
        let reps = self.reps.max(1);

        // Per-factor prox timing on scratch in/out blocks seeded with a
        // deterministic non-trivial input.
        let max_deg = g.factors().map(|a| g.factor_degree(a)).max().unwrap_or(0);
        let mut n_buf = vec![0.0f64; max_deg * d];
        for (i, v) in n_buf.iter_mut().enumerate() {
            *v = 0.1 + 0.01 * (i % 7) as f64;
        }
        let mut x_buf = vec![0.0f64; max_deg * d];
        let mut factor_seconds = Vec::with_capacity(g.num_factors());
        for a in g.factors() {
            let er = g.factor_edge_range(a);
            let k = er.len();
            let rho = &problem.params().rho[er];
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let mut ctx = ProxCtx::new(&n_buf[..k * d], rho, &mut x_buf[..k * d], d);
                problem.prox(a).prox(&mut ctx);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            factor_seconds.push(best);
        }

        // Element-wise sweep timing on a scratch store; per-item cost is
        // the min-of-reps sweep time divided by the item count.
        let mut scratch = VarStore::zeros(g);
        for (i, v) in scratch.m.iter_mut().enumerate() {
            *v = (i as f64 * 0.13).sin();
        }
        scratch.x.copy_from_slice(&scratch.m);
        scratch.u.copy_from_slice(&scratch.m);
        let (nv, ne) = (g.num_vars(), g.num_edges());
        let flat = ne * d;
        let params = problem.params();
        let time_sweep = |body: &mut dyn FnMut(&mut VarStore)| -> f64 {
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                // Clone outside the timed region: only the sweep itself is
                // the cost being measured.
                let mut s = scratch.clone();
                let t0 = Instant::now();
                body(&mut s);
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        };
        let m_s = time_sweep(&mut |s: &mut VarStore| {
            kernels::m_update_range(&s.x, &s.u, &mut s.m, 0, flat)
        });
        let z_s = time_sweep(&mut |s: &mut VarStore| {
            kernels::z_update_range(g, params, &s.m, &mut s.z, 0, nv)
        });
        let stream = kernels::specialized().then(|| paradmm_graph::EdgeStream::build(g, params));
        let u_s = time_sweep(&mut |s: &mut VarStore| match &stream {
            Some(st) => kernels::u_update_range_stream(st, &s.x, &s.z, &mut s.u, 0, ne),
            None => kernels::u_update_range(g, params, &s.x, &s.z, &mut s.u, 0, ne),
        });
        let n_s = time_sweep(&mut |s: &mut VarStore| match &stream {
            Some(st) => kernels::n_update_range_stream(st, &s.z, &s.u, &mut s.n, 0, ne),
            None => kernels::n_update_range(g, &s.z, &s.u, &mut s.n, 0, ne),
        });
        let per = |total: f64, items: usize| {
            if items == 0 {
                0.0
            } else {
                (total / items as f64).max(MIN_ITEM_COST)
            }
        };
        SweepCosts {
            factor_seconds,
            m_per_edge: per(m_s, ne),
            z_per_var: per(z_s, nv),
            u_per_edge: per(u_s, ne),
            n_per_edge: per(n_s, ne),
        }
    }

    /// Chunk size such that one claim covers ≈ `target_chunk_seconds` of
    /// average-cost items, clamped to sane bounds.
    fn chunk_for(&self, total_seconds: f64, items: usize) -> usize {
        if items == 0 || total_seconds <= 0.0 {
            return crate::backend::DEFAULT_STEAL_CHUNK;
        }
        let per_item = total_seconds / items as f64;
        let raw = (self.target_chunk_seconds / per_item.max(MIN_ITEM_COST)) as usize;
        raw.clamp(MIN_CHUNK_ITEMS, MAX_CHUNK_ITEMS)
    }

    /// Whether a cost vector is lumpy enough (max > 2× mean) that a
    /// weighted split beats a count split.
    fn is_imbalanced(costs: &[f64]) -> bool {
        if costs.len() < 2 {
            return false;
        }
        let total: f64 = costs.iter().sum();
        let mean = total / costs.len() as f64;
        costs.iter().fold(0.0f64, |m, &c| m.max(c)) > 2.0 * mean
    }
}

/// Online re-planning: re-measure sweep costs at block boundaries and
/// recompile the plan when they drift — the paper's "automatic tuning"
/// future-work item kept *live* instead of frozen at startup.
///
/// A [`Planner`] measures once and compiles one plan; if operator costs
/// then drift mid-run (data-dependent proximal solves, thermal
/// throttling, a noisy co-tenant), the frozen chunk sizes and weighted
/// splits describe a machine that no longer exists. A `ReplanPolicy`
/// closes the loop: every [`ReplanPolicy::every_blocks`]-th call to
/// [`ReplanPolicy::maybe_replan`] it re-measures the problem (scratch
/// buffers, a few microseconds per factor), compares against the costs
/// the current plan was compiled from
/// ([`SweepCosts::drift`]), and when drift exceeds
/// [`ReplanPolicy::drift_threshold`] installs a freshly compiled plan.
/// The first measuring call always installs (it is the baseline). The
/// returned costs let the caller also re-balance backend-held state —
/// [`crate::SweepExecutor::repartition`] re-grows a sharded backend's
/// factor partition under the new weights.
///
/// Replans happen only between blocks, so they never perturb in-flight
/// iterations, and an installed plan changes scheduling only — any legal
/// plan yields bit-identical iterates (module docs), so re-planning
/// never changes the trajectory of a synchronous backend.
#[derive(Debug, Clone, Copy)]
pub struct ReplanPolicy {
    /// Re-measure every this many calls (≈ blocks). Measurement costs a
    /// few prox evaluations per factor, so small values are affordable;
    /// the default re-measures every 8 blocks.
    pub every_blocks: usize,
    /// Relative drift ([`SweepCosts::drift`]) above which the plan is
    /// recompiled. The default 0.25 ignores timing noise but catches a
    /// sweep or operator whose cost moved by a quarter.
    pub drift_threshold: f64,
    /// The planner that measures and compiles.
    pub planner: Planner,
}

impl Default for ReplanPolicy {
    fn default() -> Self {
        ReplanPolicy {
            every_blocks: 8,
            drift_threshold: 0.25,
            planner: Planner::new(),
        }
    }
}

/// Mutable companion of [`ReplanPolicy`]: per-solve counters and the
/// cost baseline the current plan was compiled from. One per driven
/// problem (the fleet solver keeps one per slot).
#[derive(Debug, Clone, Default)]
pub struct ReplanState {
    /// Costs the currently installed plan was compiled from (`None`
    /// until the first measuring call).
    pub baseline: Option<SweepCosts>,
    /// Calls to `maybe_replan` so far.
    pub blocks_seen: usize,
    /// Replans actually installed (excluding the baseline install).
    pub replans: usize,
}

impl ReplanPolicy {
    /// Policy with an explicit cadence and threshold.
    ///
    /// # Panics
    /// If `every_blocks == 0` or the threshold is not positive.
    pub fn new(every_blocks: usize, drift_threshold: f64) -> Self {
        assert!(every_blocks >= 1, "replan cadence must be at least 1");
        assert!(drift_threshold > 0.0, "drift threshold must be positive");
        ReplanPolicy {
            every_blocks,
            drift_threshold,
            ..Default::default()
        }
    }

    /// Called once per block: counts the block, and on the cadence
    /// re-measures `problem`. Installs a recompiled plan (and returns
    /// the fresh costs, for [`crate::SweepExecutor::repartition`]) when
    /// this is the first measurement or the drift against the baseline
    /// exceeds the threshold; otherwise keeps the current plan *and*
    /// baseline, so slow creep accumulates across measurements instead
    /// of being forgiven each time.
    pub fn maybe_replan(
        &self,
        state: &mut ReplanState,
        problem: &mut AdmmProblem,
    ) -> Option<SweepCosts> {
        state.blocks_seen += 1;
        if !state.blocks_seen.is_multiple_of(self.every_blocks) {
            return None;
        }
        let costs = self.planner.measure(problem);
        let install = match &state.baseline {
            None => true,
            Some(base) => costs.drift(base) > self.drift_threshold,
        };
        if !install {
            return None;
        }
        if state.baseline.is_some() {
            state.replans += 1;
        }
        problem.set_plan(self.planner.plan_from_costs(problem, &costs));
        state.baseline = Some(costs.clone());
        Some(costs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradmm_graph::GraphBuilder;
    use paradmm_prox::{ProxOp, QuadraticProx};

    fn chain_problem(n: usize) -> AdmmProblem {
        let mut b = GraphBuilder::new(2);
        let vs = b.add_vars(n + 1);
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for i in 0..n {
            b.add_factor(&[vs[i], vs[i + 1]]);
            proxes.push(Box::new(QuadraticProx::isotropic(4, 1.0, &[0.0; 4])));
        }
        AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
    }

    #[test]
    fn fused_plan_has_three_passes_and_barriers() {
        let p = chain_problem(5);
        let plan = SweepPlan::fused(&p);
        assert_eq!(plan.barriers_per_iteration(), 3);
        assert!(plan.is_fused());
        assert!(plan.matches(p.graph()));
        assert_eq!(
            plan.passes().iter().map(|x| x.kind()).collect::<Vec<_>>(),
            vec![PassKind::Xm, PassKind::Z, PassKind::Un]
        );
    }

    #[test]
    fn unfused_plan_mirrors_the_seed_schedule() {
        let p = chain_problem(5);
        let plan = SweepPlan::unfused(&p);
        assert_eq!(plan.barriers_per_iteration(), 5);
        assert!(!plan.is_fused());
        let kinds: Vec<UpdateKind> = plan
            .passes()
            .iter()
            .flat_map(|x| x.kind().kinds())
            .copied()
            .collect();
        assert_eq!(kinds, UpdateKind::ALL);
    }

    #[test]
    fn from_passes_rejects_illegal_orders() {
        // z before m: illegal.
        let bad = vec![
            Pass::uniform(PassKind::X, 3, 8),
            Pass::uniform(PassKind::Z, 2, 8),
            Pass::uniform(PassKind::M, 4, 8),
            Pass::uniform(PassKind::Un, 4, 8),
        ];
        assert!(SweepPlan::from_passes(bad).is_err());
        // duplicate coverage: x+m then m again.
        let dup = vec![
            Pass::uniform(PassKind::Xm, 3, 8),
            Pass::uniform(PassKind::M, 4, 8),
            Pass::uniform(PassKind::Z, 2, 8),
            Pass::uniform(PassKind::Un, 4, 8),
        ];
        assert!(SweepPlan::from_passes(dup).is_err());
        // all four legal shapes pass.
        for (xm, un) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut passes = Vec::new();
            if xm {
                passes.push(Pass::uniform(PassKind::Xm, 3, 8));
            } else {
                passes.push(Pass::uniform(PassKind::X, 3, 8));
                passes.push(Pass::uniform(PassKind::M, 4, 8));
            }
            passes.push(Pass::uniform(PassKind::Z, 2, 8));
            if un {
                passes.push(Pass::uniform(PassKind::Un, 4, 8));
            } else {
                passes.push(Pass::uniform(PassKind::U, 4, 8));
                passes.push(Pass::uniform(PassKind::N, 4, 8));
            }
            assert!(SweepPlan::from_passes(passes).is_ok(), "xm={xm} un={un}");
        }
    }

    #[test]
    fn uniform_split_matches_assign_range() {
        let pass = Pass::uniform(PassKind::Un, 17, 8);
        for parts in [1usize, 2, 3, 7] {
            for i in 0..parts {
                assert_eq!(pass.split(i, parts), kernels::assign_range(17, i, parts));
            }
        }
    }

    #[test]
    fn weighted_split_tiles_and_balances_cost() {
        // One huge item among tiny ones: the huge item's owner should get
        // (almost) nothing else.
        let mut costs = vec![1.0f64; 64];
        costs[0] = 63.0;
        let pass = Pass::weighted(PassKind::Xm, 8, &costs);
        for parts in [1usize, 2, 4, 5] {
            let mut prev_hi = 0;
            let mut covered = 0;
            for i in 0..parts {
                let (lo, hi) = pass.split(i, parts);
                assert_eq!(lo, prev_hi, "parts={parts} part={i}");
                covered += hi - lo;
                prev_hi = hi;
            }
            assert_eq!(covered, 64, "parts={parts}");
            assert_eq!(prev_hi, 64);
        }
        // With 2 parts the totals are 126/2 = 63 per side: item 0 alone
        // hits the target exactly, so part 0 is exactly {0}.
        assert_eq!(pass.split(0, 2), (0, 1));
        assert_eq!(pass.split(1, 2), (1, 64));
    }

    #[test]
    fn weighted_split_more_parts_than_items_stays_legal() {
        let pass = Pass::weighted(PassKind::Z, 1, &[1.0, 1.0]);
        let mut covered = 0;
        let mut prev_hi = 0;
        for i in 0..5 {
            let (lo, hi) = pass.split(i, 5);
            assert_eq!(lo, prev_hi);
            covered += hi - lo;
            prev_hi = hi;
        }
        assert_eq!(covered, 2);
    }

    #[test]
    fn planner_produces_a_matching_fused_plan() {
        let p = chain_problem(12);
        let plan = Planner::new().plan(&p);
        assert!(plan.is_fused());
        assert!(plan.matches(p.graph()));
        assert_eq!(plan.barriers_per_iteration(), 3);
        for pass in plan.passes() {
            assert!(pass.chunk() >= 1);
        }
    }

    #[test]
    fn planner_weights_imbalanced_z_spaces() {
        // A hub variable of high degree must trigger the weighted z pass.
        let mut b = GraphBuilder::new(1);
        let hub = b.add_var();
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for _ in 0..24 {
            let leaf = b.add_var();
            b.add_factor(&[hub, leaf]);
            proxes.push(Box::new(QuadraticProx::isotropic(2, 1.0, &[0.0, 0.0])));
        }
        let p = AdmmProblem::new(b.build(), proxes, 1.0, 1.0);
        let plan = Planner::new().plan(&p);
        let z = &plan.passes()[1];
        assert_eq!(z.kind(), PassKind::Z);
        assert!(z.is_weighted(), "hub graph must get a weighted z split");
        // The hub (item 0) dominates: with 2 parts, part 0 is tiny.
        let (lo, hi) = z.split(0, 2);
        assert!(hi - lo < 13, "hub owner got {} items", hi - lo);
    }

    #[test]
    fn summary_mentions_every_pass() {
        let p = chain_problem(3);
        let s = SweepPlan::fused(&p).summary();
        assert!(s.contains("x+m["));
        assert!(s.contains("z["));
        assert!(s.contains("u+n["));
    }

    #[test]
    fn plan_installs_on_problem_and_shape_gates() {
        let mut p = chain_problem(4);
        let plan = SweepPlan::fused(&p);
        p.set_plan(plan);
        assert!(p.plan().is_some());
        p.clear_plan();
        assert!(p.plan().is_none());
        let other = chain_problem(9);
        let foreign = SweepPlan::fused(&other);
        assert!(!foreign.matches(p.graph()));
    }
}
