//! The seed asynchronous activation engine — kept as the documented
//! scalar *reference* for asynchronous ADMM (the paper's future-work
//! item 1). Production asynchronous execution lives in
//! [`crate::StaleBoundedBackend`] (which [`crate::AsyncBackend`] routes
//! to): per-shard workers over the sharded halo machinery, a *bounded*
//! staleness window enforced by progress watermarks, and a `k = 0` mode
//! that is bit-identical to the synchronous backends. This module's
//! [`run_async`] remains the simplest possible expression of the idea —
//! lock-free incremental consensus with *unbounded* (racy-fresh)
//! staleness — and the yardstick its tests compare against.
//!
//! "Use asynchronous implementations of the ADMM so that not all cores
//! need to wait for the busiest core." Instead of five barrier-separated
//! sweeps, each worker repeatedly *activates* one factor of its partition:
//!
//! 1. read the factor's current `n = z − u` (racy-fresh),
//! 2. run its proximal operator,
//! 3. for each touched edge, publish `m = x + u` and fold the change into
//!    the variable's consensus **incrementally**:
//!    `z_b += ρ_e·(m_new − m_old)/Σρ_b` via lock-free CAS on the shared
//!    `z` array,
//! 4. update that edge's `u` and `n` locally.
//!
//! This is the randomized/asynchronous ADMM family of the paper's
//! refs \[29\]–\[31\]; iterates differ from the synchronous schedule (workers
//! see bounded-stale `z`), so unlike the barrier/rayon schedulers it is
//! *not* bit-identical to serial — convergence on convex problems is
//! what the tests assert instead. On one activation pass per factor the
//! single-threaded variant coincides with a Gauss–Seidel-flavoured ADMM,
//! which typically converges *faster* per sweep than the Jacobi-style
//! Algorithm 2.

use std::sync::atomic::{AtomicU64, Ordering};

use paradmm_graph::{FactorId, VarStore};
use paradmm_prox::ProxCtx;

use crate::plan::SweepPlan;
use crate::problem::AdmmProblem;

/// Atomic f64 cell (CAS on the bit pattern).
#[repr(transparent)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    #[inline]
    fn load(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// `cell += delta` via a CAS loop.
    #[inline]
    fn fetch_add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Reinterprets a mutable f64 slice as atomic cells for the duration of
/// the scope. Sound: `AtomicU64` is `repr(transparent)` over `u64`, same
/// layout as `f64`, and the borrow is exclusive at both ends.
fn as_atomic(data: &mut [f64]) -> &[AtomicF64] {
    unsafe { std::slice::from_raw_parts(data.as_mut_ptr().cast::<AtomicF64>(), data.len()) }
}

/// Runs `sweeps` asynchronous activation passes with `threads` workers.
///
/// Each worker owns a static partition of the factors and activates them
/// round-robin without any inter-worker barrier; `z` is shared through
/// atomic incremental updates. The partition comes from the problem's
/// [`SweepPlan`]: its factor pass's [`crate::plan::Pass::split`], so a
/// measured-cost plan hands each worker an equal share of *operator
/// seconds* rather than of factor count — on heterogeneous operators the
/// whole point of going asynchronous. `store` must be in a consistent
/// state (`m = x + u`, `z` = the ρ-weighted average of `m`, `n = z − u`);
/// the easiest way to guarantee that is to run ≥1 synchronous iteration
/// first, or start from all-zeros.
pub fn run_async(problem: &AdmmProblem, store: &mut VarStore, sweeps: usize, threads: usize) {
    assert!(threads >= 1);
    let g = problem.graph();
    let params = problem.params();
    let d = g.dims();
    let plan = SweepPlan::resolve(problem);
    let factor_pass = plan.factor_pass();

    // Per-variable ρ totals (denominators of the incremental z-update).
    let mut rho_sum = vec![0.0f64; g.num_vars()];
    for e in g.edges() {
        rho_sum[g.edge_var(e).idx()] += params.rho(e);
    }

    let z = as_atomic(&mut store.z);
    let m = as_atomic(&mut store.m);
    let u = as_atomic(&mut store.u);
    let x = as_atomic(&mut store.x);
    let rho_sum = &rho_sum;

    std::thread::scope(|scope| {
        for tid in 0..threads {
            scope.spawn(move || {
                let (f_lo, f_hi) = factor_pass.split(tid, threads);
                // Scratch buffers reused across activations.
                let mut n_buf = Vec::new();
                let mut x_buf = Vec::new();
                for sweep in 0..sweeps {
                    // Asynchronous convergence results assume *bounded
                    // staleness*: every worker must keep making progress
                    // relative to the others. Yielding once per sweep keeps
                    // workers interleaved even when the OS would otherwise
                    // time-slice them coarsely (e.g. few cores).
                    if sweep > 0 {
                        std::thread::yield_now();
                    }
                    for a in f_lo..f_hi {
                        let fa = FactorId::from_usize(a);
                        let er = g.factor_edge_range(fa);
                        let k = er.len();
                        // Gather fresh n = z − u for this factor's edges.
                        n_buf.clear();
                        for e in er.clone() {
                            let b = g.edge_var(paradmm_graph::EdgeId::from_usize(e));
                            for c in 0..d {
                                let zv = z[b.idx() * d + c].load();
                                let uv = u[e * d + c].load();
                                n_buf.push(zv - uv);
                            }
                        }
                        x_buf.clear();
                        x_buf.resize(k * d, 0.0);
                        {
                            let rho = &params.rho[er.clone()];
                            let mut ctx = ProxCtx::new(&n_buf, rho, &mut x_buf, d);
                            problem.prox(fa).prox(&mut ctx);
                        }
                        // Publish x, fold m-deltas into z, step u, refresh n.
                        for (i, e) in er.clone().enumerate() {
                            let b = g.edge_var(paradmm_graph::EdgeId::from_usize(e));
                            let rho = params.rho[e];
                            let alpha = params.alpha[e];
                            let denom = rho_sum[b.idx()];
                            for c in 0..d {
                                let xe = x_buf[i * d + c];
                                x[e * d + c].0.store(xe.to_bits(), Ordering::Release);
                                let u_old = u[e * d + c].load();
                                let m_new = xe + u_old;
                                let m_old = m[e * d + c].load();
                                m[e * d + c].0.store(m_new.to_bits(), Ordering::Release);
                                if denom > 0.0 {
                                    z[b.idx() * d + c].fetch_add(rho * (m_new - m_old) / denom);
                                }
                                let zv = z[b.idx() * d + c].load();
                                let u_new = u_old + alpha * (xe - zv);
                                u[e * d + c].0.store(u_new.to_bits(), Ordering::Release);
                            }
                        }
                    }
                }
            });
        }
    });

    // Refresh n = z − u coherently for downstream synchronous use.
    for e in g.edges() {
        let b = g.edge_var(e);
        for c in 0..d {
            store.n[e.idx() * d + c] = store.z[b.idx() * d + c] - store.u[e.idx() * d + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradmm_graph::{GraphBuilder, VarId};
    use paradmm_prox::{ConsensusEqualityProx, ProxOp, QuadraticProx};

    fn consensus_problem(targets: &[f64]) -> AdmmProblem {
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for &t in targets {
            b.add_factor(&[v]);
            proxes.push(Box::new(QuadraticProx::isotropic(1, 2.0, &[t])));
        }
        AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
    }

    #[test]
    fn single_thread_converges_to_mean() {
        let p = consensus_problem(&[1.0, 5.0, 9.0]);
        let mut store = VarStore::zeros(p.graph());
        run_async(&p, &mut store, 400, 1);
        let z = store.z_var(VarId(0))[0];
        assert!((z - 5.0).abs() < 1e-5, "z = {z}");
    }

    #[test]
    fn multi_thread_converges_to_mean() {
        let p = consensus_problem(&[2.0, 4.0, 6.0, 8.0]);
        let mut store = VarStore::zeros(p.graph());
        run_async(&p, &mut store, 800, 4);
        let z = store.z_var(VarId(0))[0];
        assert!((z - 5.0).abs() < 1e-4, "z = {z}");
    }

    #[test]
    fn chain_problem_converges() {
        // 6-variable consensus chain with anchors; optimum = mean.
        let mut b = GraphBuilder::new(1);
        let vars = b.add_vars(6);
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            b.add_factor(&[v]);
            proxes.push(Box::new(QuadraticProx::isotropic(1, 1.0, &[i as f64])));
        }
        for i in 0..5 {
            b.add_factor(&[vars[i], vars[i + 1]]);
            proxes.push(Box::new(ConsensusEqualityProx));
        }
        let p = AdmmProblem::new(b.build(), proxes, 1.0, 1.0);
        let mut store = VarStore::zeros(p.graph());
        run_async(&p, &mut store, 3000, 3);
        for &v in &vars {
            let z = store.z_var(v)[0];
            assert!((z - 2.5).abs() < 1e-2, "var {v}: z = {z}");
        }
    }

    #[test]
    fn async_leaves_consistent_state() {
        let p = consensus_problem(&[1.0, 3.0]);
        let mut store = VarStore::zeros(p.graph());
        run_async(&p, &mut store, 50, 2);
        // n must equal z − u everywhere after the final refresh.
        let g = p.graph();
        for e in g.edges() {
            let b = g.edge_var(e);
            let n = store.n_edge(e)[0];
            let expect = store.z_var(b)[0] - store.u_edge(e)[0];
            assert!((n - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_multidim_blocks() {
        // dims = 3: consensus of two vector anchors.
        let mut b = GraphBuilder::new(3);
        let v = b.add_var();
        b.add_factor(&[v]);
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![
            Box::new(QuadraticProx::isotropic(3, 2.0, &[1.0, 2.0, 3.0])),
            Box::new(QuadraticProx::isotropic(3, 2.0, &[3.0, 6.0, 9.0])),
        ];
        let p = AdmmProblem::new(b.build(), proxes, 1.0, 1.0);
        let mut store = VarStore::zeros(p.graph());
        run_async(&p, &mut store, 500, 2);
        let z = store.z_var(VarId(0));
        for (c, expect) in [2.0, 4.0, 6.0].iter().enumerate() {
            assert!(
                (z[c] - expect).abs() < 1e-4,
                "component {c}: {} vs {expect}",
                z[c]
            );
        }
    }
}
