//! Deliberately naive reference implementation of Algorithm 2.
//!
//! Models "the tool used by \[9\], \[24\]" that the paper reports being ≥4×
//! slower per iteration than parADMM on a single core: every edge vector
//! is its own heap allocation reached through per-node adjacency lists, so
//! each sweep chases pointers instead of streaming a flat array. It is
//! bit-for-bit equivalent to the engine (same summation order), which makes
//! it both a correctness oracle in tests and the comparator for the
//! layout-ablation benchmark.

use paradmm_graph::{FactorId, VarStore};
use paradmm_prox::ProxCtx;

use crate::problem::AdmmProblem;

/// Scattered-allocation ADMM state: one boxed vector per edge per array.
pub struct NaiveAdmm<'p> {
    problem: &'p AdmmProblem,
    x: Vec<Vec<f64>>,
    m: Vec<Vec<f64>>,
    u: Vec<Vec<f64>>,
    n: Vec<Vec<f64>>,
    z: Vec<Vec<f64>>,
    /// Scratch reused by the x-update to assemble a factor's blocks.
    scratch_n: Vec<f64>,
    scratch_x: Vec<f64>,
}

impl<'p> NaiveAdmm<'p> {
    /// Zero-initialized state for `problem`.
    pub fn new(problem: &'p AdmmProblem) -> Self {
        let g = problem.graph();
        let d = g.dims();
        NaiveAdmm {
            problem,
            x: vec![vec![0.0; d]; g.num_edges()],
            m: vec![vec![0.0; d]; g.num_edges()],
            u: vec![vec![0.0; d]; g.num_edges()],
            n: vec![vec![0.0; d]; g.num_edges()],
            z: vec![vec![0.0; d]; g.num_vars()],
            scratch_n: Vec::new(),
            scratch_x: Vec::new(),
        }
    }

    /// Copies state in from a flat [`VarStore`] (to co-iterate with the
    /// engine from identical starting points).
    pub fn load_from(&mut self, store: &VarStore) {
        let d = store.dims();
        for (e, v) in self.x.iter_mut().enumerate() {
            v.copy_from_slice(&store.x[e * d..(e + 1) * d]);
        }
        for (e, v) in self.m.iter_mut().enumerate() {
            v.copy_from_slice(&store.m[e * d..(e + 1) * d]);
        }
        for (e, v) in self.u.iter_mut().enumerate() {
            v.copy_from_slice(&store.u[e * d..(e + 1) * d]);
        }
        for (e, v) in self.n.iter_mut().enumerate() {
            v.copy_from_slice(&store.n[e * d..(e + 1) * d]);
        }
        for (b, v) in self.z.iter_mut().enumerate() {
            v.copy_from_slice(&store.z[b * d..(b + 1) * d]);
        }
    }

    /// The consensus estimate of variable `b`.
    pub fn z(&self, b: usize) -> &[f64] {
        &self.z[b]
    }

    /// One full Algorithm 2 iteration, serial, scattered layout.
    pub fn iterate(&mut self) {
        let g = self.problem.graph();
        let params = self.problem.params();
        let d = g.dims();

        // x-update: gather each factor's n-blocks, run the prox, scatter x.
        for a in g.factors() {
            let er = g.factor_edge_range(a);
            let k = er.len();
            self.scratch_n.clear();
            for e in er.clone() {
                self.scratch_n.extend_from_slice(&self.n[e]);
            }
            self.scratch_x.clear();
            self.scratch_x.resize(k * d, 0.0);
            let rho = &params.rho[er.clone()];
            {
                let mut ctx = ProxCtx::new(&self.scratch_n, rho, &mut self.scratch_x, d);
                self.problem.prox(a).prox(&mut ctx);
            }
            for (i, e) in er.enumerate() {
                self.x[e].copy_from_slice(&self.scratch_x[i * d..(i + 1) * d]);
            }
            let _ = FactorId::from_usize(a.idx());
        }

        // m-update.
        for e in 0..g.num_edges() {
            for c in 0..d {
                self.m[e][c] = self.x[e][c] + self.u[e][c];
            }
        }

        // z-update (same ascending-edge summation order as the engine →
        // bit-identical floating-point results).
        for b in g.vars() {
            let edges = g.var_edges(b);
            if edges.is_empty() {
                continue;
            }
            let zb = &mut self.z[b.idx()];
            zb.iter_mut().for_each(|v| *v = 0.0);
            let mut rho_sum = 0.0;
            for &e in edges {
                let rho = params.rho(e);
                rho_sum += rho;
                for c in 0..d {
                    zb[c] += rho * self.m[e.idx()][c];
                }
            }
            let inv = 1.0 / rho_sum;
            zb.iter_mut().for_each(|v| *v *= inv);
        }

        // u-update.
        for e in g.edges() {
            let b = g.edge_var(e);
            let alpha = params.alpha(e);
            for c in 0..d {
                self.u[e.idx()][c] += alpha * (self.x[e.idx()][c] - self.z[b.idx()][c]);
            }
        }

        // n-update.
        for e in g.edges() {
            let b = g.edge_var(e);
            for c in 0..d {
                self.n[e.idx()][c] = self.z[b.idx()][c] - self.u[e.idx()][c];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{SerialBackend, SweepExecutor};
    use crate::timing::UpdateTimings;
    use paradmm_graph::{GraphBuilder, VarStore};
    use paradmm_prox::{HalfspaceProx, ProxOp, QuadraticProx};

    fn mixed_problem() -> AdmmProblem {
        // Two variables (dims 2), three factors of mixed type.
        let mut b = GraphBuilder::new(2);
        let vs = b.add_vars(2);
        b.add_factor(&[vs[0]]);
        b.add_factor(&[vs[0], vs[1]]);
        b.add_factor(&[vs[1]]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![
            Box::new(QuadraticProx::isotropic(2, 1.0, &[1.0, -1.0])),
            Box::new(HalfspaceProx::new(vec![1.0, 0.0, 1.0, 0.0], 3.0)),
            Box::new(QuadraticProx::isotropic(2, 0.5, &[2.0, 0.5])),
        ];
        AdmmProblem::new(b.build(), proxes, 1.3, 0.9)
    }

    #[test]
    fn naive_matches_engine_bit_for_bit() {
        let problem = mixed_problem();
        let mut store = VarStore::zeros(problem.graph());
        // Non-trivial start.
        for (i, v) in store.n.iter_mut().enumerate() {
            *v = (i as f64 * 0.7).sin();
        }
        let mut naive = NaiveAdmm::new(&problem);
        naive.load_from(&store);

        let mut t = UpdateTimings::new();
        for _ in 0..25 {
            SerialBackend.run_block(&problem, &mut store, 1, &mut t);
            naive.iterate();
        }
        let d = problem.graph().dims();
        for b in 0..problem.graph().num_vars() {
            for c in 0..d {
                assert_eq!(
                    store.z[b * d + c],
                    naive.z(b)[c],
                    "z mismatch at var {b} comp {c}"
                );
            }
        }
    }

    #[test]
    fn naive_converges_on_consensus() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        b.add_factor(&[v]);
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![
            Box::new(QuadraticProx::isotropic(1, 1.0, &[0.0])),
            Box::new(QuadraticProx::isotropic(1, 1.0, &[4.0])),
        ];
        let problem = AdmmProblem::new(b.build(), proxes, 1.0, 1.0);
        let mut naive = NaiveAdmm::new(&problem);
        for _ in 0..500 {
            naive.iterate();
        }
        assert!((naive.z(0)[0] - 2.0).abs() < 1e-6);
    }
}
