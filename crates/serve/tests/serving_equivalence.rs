//! End-to-end serving equivalence: requests served over TCP through the
//! continuous-batching engine produce bit-identical results to solo
//! [`paradmm_core::Solver`] runs — including requests that join the
//! fused batch mid-flight and requests seeded from the warm-start
//! cache.

use std::net::TcpStream;
use std::time::Duration;

use paradmm_core::{AdmmProblem, StopReason, StoppingCriteria};
use paradmm_graph::io::{read_frame, write_frame};
use paradmm_graph::GraphBuilder;
use paradmm_prox::{ProxOp, QuadraticProx};
use paradmm_serve::protocol::{decode_response, encode_request};
use paradmm_serve::{Lane, ServeClient, ServerConfig, ServerHandle, SolveRequest};

/// Consensus of `targets.len()` quadratics over one variable; the
/// optimum is the mean of the targets.
fn consensus_rho(dims: usize, targets: &[f64], rho: f64) -> AdmmProblem {
    let mut b = GraphBuilder::new(dims);
    let v = b.add_var();
    let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
    for &t in targets {
        b.add_factor(&[v]);
        let target: Vec<f64> = (0..dims).map(|c| t + c as f64).collect();
        proxes.push(Box::new(QuadraticProx::isotropic(dims, 2.0, &target)));
    }
    AdmmProblem::new(b.build(), proxes, rho, 1.0)
}

fn consensus(dims: usize, targets: &[f64]) -> AdmmProblem {
    consensus_rho(dims, targets, 1.0)
}

fn request(dims: usize, targets: &[f64], stopping: StoppingCriteria) -> SolveRequest {
    SolveRequest::new(consensus(dims, targets)).with_stopping(stopping)
}

/// A request that genuinely exhausts its whole iteration budget: a tiny
/// ρ makes consensus averaging extremely slow, so zero tolerances are
/// never met and the solve runs for `max_iters` wall-clock-visible
/// iterations.
fn slow_request(targets: &[f64], stopping: StoppingCriteria) -> SolveRequest {
    SolveRequest::new(consensus_rho(1, targets, 0.001)).with_stopping(stopping)
}

fn tight() -> StoppingCriteria {
    StoppingCriteria {
        max_iters: 2000,
        eps_abs: 1e-10,
        eps_rel: 1e-9,
        check_every: 10,
    }
}

#[test]
fn served_stream_matches_solo_over_tcp() {
    let server = ServerHandle::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // Pipeline every submission before reading a single response.
    let workloads: Vec<&[f64]> = vec![
        &[1.0, 5.0, 9.0],
        &[2.0, 4.0],
        &[-3.0, 0.0, 3.0, 6.0],
        &[7.0],
    ];
    let ids: Vec<u64> = workloads
        .iter()
        .map(|t| client.submit(&request(2, t, tight()), false).unwrap())
        .collect();
    assert_eq!(client.in_flight(), workloads.len());

    for (id, t) in ids.iter().zip(&workloads) {
        let served = client.recv(*id).unwrap();
        let reference = request(2, t, tight()).solve();
        assert_eq!(served.iterations, reference.iterations, "id {id}");
        assert_eq!(served.stop_reason, reference.stop_reason, "id {id}");
        assert_eq!(served.store.x, reference.store.x, "id {id}");
        assert_eq!(served.store.z, reference.store.z, "id {id}");
        assert_eq!(served.store.u, reference.store.u, "id {id}");
        assert_eq!(served.store.n, reference.store.n, "id {id}");
        let (a, b) = (
            served.final_residuals.unwrap(),
            reference.final_residuals.unwrap(),
        );
        assert_eq!(a.primal, b.primal, "id {id}");
        assert_eq!(a.dual, b.dual, "id {id}");
    }
    assert_eq!(client.in_flight(), 0);

    let engine = server.shutdown();
    assert_eq!(engine.stats().completed, workloads.len() as u64);
    assert!(engine.stats().batch_served >= 1);
}

#[test]
fn mid_flight_join_over_tcp_stays_bit_identical() {
    let server = ServerHandle::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    // A long fixed-budget request with frequent repack boundaries: zero
    // tolerances force the full budget, check_every bounds each fused
    // block so the engine keeps draining its inbox while it runs.
    let long = StoppingCriteria {
        max_iters: 100_000,
        eps_abs: 0.0,
        eps_rel: 0.0,
        check_every: 25,
    };
    let id1 = client
        .submit(&slow_request(&[1.0, 5.0, 9.0], long), false)
        .unwrap();
    // Give the engine time to admit the first request and start
    // stepping, so the second genuinely arrives mid-flight (the slow
    // request runs for tens of milliseconds even in release builds).
    std::thread::sleep(Duration::from_millis(10));
    let id2 = client
        .submit(&request(1, &[2.0, 4.0], tight()), false)
        .unwrap();

    let served2 = client.recv(id2).unwrap();
    let served1 = client.recv(id1).unwrap();

    let ref1 = slow_request(&[1.0, 5.0, 9.0], long).solve();
    let ref2 = request(1, &[2.0, 4.0], tight()).solve();
    assert_eq!(served1.iterations, ref1.iterations);
    assert_eq!(served1.stop_reason, StopReason::MaxIterations);
    assert_eq!(served1.store.z, ref1.store.z);
    assert_eq!(served1.store.u, ref1.store.u);
    assert_eq!(served2.iterations, ref2.iterations);
    assert_eq!(served2.stop_reason, ref2.stop_reason);
    assert_eq!(served2.store.z, ref2.store.z);
    assert_eq!(served2.store.u, ref2.store.u);
    // The short request retired long before the fixed-budget one.
    assert_eq!(served2.lane, Lane::Batch);

    let engine = server.shutdown();
    assert!(
        engine.stats().joins >= 1,
        "second request joined the running pack (stats: {:?})",
        engine.stats()
    );
}

#[test]
fn warm_start_cache_round_trip_over_tcp() {
    let server = ServerHandle::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = ServeClient::connect(server.addr()).unwrap();

    let cold = client
        .solve(&request(1, &[1.0, 5.0, 9.0], tight()), true)
        .unwrap();
    assert!(!cold.warm_started);
    assert_eq!(cold.stop_reason, StopReason::Converged);

    // The identical problem again: seeded from the server-side cache,
    // same stop reason, and bit-identical to a solo solve given the
    // same warm start.
    let warm = client
        .solve(&request(1, &[1.0, 5.0, 9.0], tight()), true)
        .unwrap();
    assert!(warm.warm_started, "resubmission hits the warm-start cache");
    assert_eq!(warm.stop_reason, StopReason::Converged);

    let reference = request(1, &[1.0, 5.0, 9.0], tight())
        .with_warm_start(cold.store.clone())
        .solve();
    assert_eq!(warm.iterations, reference.iterations);
    assert_eq!(warm.store.x, reference.store.x);
    assert_eq!(warm.store.z, reference.store.z);
    assert_eq!(warm.store.u, reference.store.u);

    let engine = server.shutdown();
    assert_eq!(engine.stats().cache_hits, 1);
}

#[test]
fn undecodable_frame_reports_error_and_keeps_connection() {
    let server = ServerHandle::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // A well-delimited frame whose payload is garbage: the server must
    // report a request-level error, not kill the connection.
    write_frame(&mut stream, b"this is not a solve request").unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("error response");
    let (id, result) = decode_response(&reply, None).unwrap();
    assert_eq!(id, u64::MAX, "bad-request reports carry the sentinel id");
    assert!(result.is_err());

    // The same connection still serves valid requests afterwards.
    let req = request(1, &[3.0, -1.0], tight());
    let graph = req.problem().graph().clone();
    let payload = encode_request(42, &req, false).unwrap();
    write_frame(&mut stream, &payload).unwrap();
    let reply = read_frame(&mut stream).unwrap().expect("ok response");
    let (id, result) = decode_response(&reply, Some(&graph)).unwrap();
    assert_eq!(id, 42);
    let served = result.unwrap();
    let reference = request(1, &[3.0, -1.0], tight()).solve();
    assert_eq!(served.iterations, reference.iterations);
    assert_eq!(served.store.z, reference.store.z);

    drop(stream);
    let engine = server.shutdown();
    assert_eq!(engine.stats().completed, 1);
}
