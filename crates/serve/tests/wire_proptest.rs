//! Property-based coverage of the serve wire protocol: encode/decode
//! roundtrips over arbitrary requests, rejection of every truncation
//! point, and oversized-frame rejection at the transport layer.

use std::io::Cursor;
use std::time::Duration;

use proptest::prelude::*;

use paradmm_core::{AdmmProblem, Priority, StoppingCriteria};
use paradmm_graph::io::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
use paradmm_graph::GraphBuilder;
use paradmm_prox::{ProxOp, QuadraticProx};
use paradmm_serve::protocol::{
    decode_request, decode_response, encode_request, encode_response, response_id, ServedOutcome,
};
use paradmm_serve::{Lane, SolveRequest};

/// Consensus of `targets.len()` quadratics over one `dims`-dimensional
/// variable — small enough that property cases stay fast, rich enough
/// to exercise graph/params/spec/store encoding.
fn consensus(dims: usize, targets: &[f64]) -> AdmmProblem {
    let mut b = GraphBuilder::new(dims);
    let v = b.add_var();
    let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
    for &t in targets {
        b.add_factor(&[v]);
        let target: Vec<f64> = (0..dims).map(|c| t + c as f64).collect();
        proxes.push(Box::new(QuadraticProx::isotropic(dims, 2.0, &target)));
    }
    AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
}

#[derive(Debug, Clone)]
struct RequestShape {
    dims: usize,
    targets: Vec<f64>,
    stopping: StoppingCriteria,
    priority: Priority,
    deadline_us: Option<u64>,
    warm: bool,
    use_cache: bool,
    id: u64,
}

fn priority_strategy() -> impl Strategy<Value = Priority> {
    (0usize..4).prop_map(|i| match i {
        0 => Priority::Low,
        1 => Priority::Normal,
        2 => Priority::High,
        _ => Priority::Critical,
    })
}

fn stopping_strategy() -> impl Strategy<Value = StoppingCriteria> {
    (
        1usize..400,
        // 0 means "no intermediate checks" (check_every = usize::MAX).
        0usize..64,
        1e-10f64..1e-2,
        1e-10f64..1e-2,
    )
        .prop_map(|(max_iters, check, eps_abs, eps_rel)| StoppingCriteria {
            max_iters,
            eps_abs,
            eps_rel,
            check_every: if check == 0 { usize::MAX } else { check },
        })
}

fn request_strategy() -> impl Strategy<Value = RequestShape> {
    (
        (
            1usize..4,
            proptest::collection::vec(-10.0f64..10.0, 1..5),
            stopping_strategy(),
        ),
        (
            priority_strategy(),
            // 0 means "no deadline".
            0u64..10_000_000,
            0usize..4,
            0u64..u64::MAX,
        ),
    )
        .prop_map(
            |((dims, targets, stopping), (priority, deadline_us, flag_bits, id))| RequestShape {
                dims,
                targets,
                stopping,
                priority,
                deadline_us: (deadline_us > 0).then_some(deadline_us),
                warm: flag_bits & 1 != 0,
                use_cache: flag_bits & 2 != 0,
                id,
            },
        )
}

fn build_request(shape: &RequestShape) -> SolveRequest {
    let mut req = SolveRequest::new(consensus(shape.dims, &shape.targets))
        .with_stopping(shape.stopping)
        .with_priority(shape.priority);
    if let Some(us) = shape.deadline_us {
        req = req.with_deadline(Duration::from_micros(us));
    }
    if shape.warm {
        // A correctly-shaped nontrivial store: a few solo iterations.
        let seed = SolveRequest::new(consensus(shape.dims, &shape.targets))
            .with_stopping(StoppingCriteria::fixed_iterations(3))
            .solve();
        req = req.with_warm_start(seed.store);
    }
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode → decode → re-encode is byte-identical, and the decoded
    /// request preserves every field the wire carries.
    #[test]
    fn request_roundtrip_is_stable(shape in request_strategy()) {
        let req = build_request(&shape);
        let bytes = encode_request(shape.id, &req, shape.use_cache).unwrap();
        let decoded = decode_request(&bytes).unwrap();
        prop_assert_eq!(decoded.id, shape.id);
        prop_assert_eq!(decoded.use_cache, shape.use_cache);
        prop_assert_eq!(decoded.request.priority(), shape.priority);
        prop_assert_eq!(
            decoded.request.deadline(),
            shape.deadline_us.map(Duration::from_micros)
        );
        prop_assert_eq!(*decoded.request.stopping(), shape.stopping);
        prop_assert_eq!(decoded.request.warm_start().is_some(), shape.warm);
        prop_assert_eq!(
            decoded.request.problem().graph().num_factors(),
            shape.targets.len()
        );
        let again = encode_request(decoded.id, &decoded.request, decoded.use_cache).unwrap();
        prop_assert_eq!(again, bytes);
    }

    /// Every proper prefix of a valid request payload is rejected.
    #[test]
    fn truncated_request_rejected(
        shape in request_strategy(),
        cut in 0.0f64..1.0,
    ) {
        let req = build_request(&shape);
        let bytes = encode_request(shape.id, &req, shape.use_cache).unwrap();
        let cut = ((bytes.len() as f64) * cut) as usize; // always < len
        prop_assert!(decode_request(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
    }

    /// Trailing garbage after a valid request payload is rejected.
    #[test]
    fn trailing_bytes_rejected(shape in request_strategy(), junk in 1usize..16) {
        let req = build_request(&shape);
        let mut bytes = encode_request(shape.id, &req, shape.use_cache).unwrap();
        bytes.extend(std::iter::repeat_n(0xAB, junk));
        prop_assert!(decode_request(&bytes).is_err());
    }

    /// Response encode → decode → re-encode is byte-identical and the
    /// solver outputs survive exactly.
    #[test]
    fn response_roundtrip_is_stable(shape in request_strategy(), id in 0u64..u64::MAX) {
        let graph = consensus(shape.dims, &shape.targets).graph().clone();
        let outcome = build_request(&shape).solve();
        let served = ServedOutcome {
            store: outcome.store,
            iterations: outcome.iterations,
            stop_reason: outcome.stop_reason,
            final_residuals: outcome.final_residuals,
            elapsed: outcome.elapsed,
            lane: Lane::Batch,
            warm_started: shape.warm,
        };
        let bytes = encode_response(id, &Ok(served.clone()));
        prop_assert_eq!(response_id(&bytes).unwrap(), id);
        let (rid, result) = decode_response(&bytes, Some(&graph)).unwrap();
        prop_assert_eq!(rid, id);
        let back = result.unwrap();
        prop_assert_eq!(back.iterations, served.iterations);
        prop_assert_eq!(back.stop_reason, served.stop_reason);
        prop_assert_eq!(back.lane, served.lane);
        prop_assert_eq!(back.warm_started, served.warm_started);
        prop_assert_eq!(&back.store.x, &served.store.x);
        prop_assert_eq!(&back.store.z, &served.store.z);
        prop_assert_eq!(&back.store.u, &served.store.u);
        prop_assert_eq!(&back.store.n, &served.store.n);
        let again = encode_response(rid, &Ok(back));
        prop_assert_eq!(again, bytes);
    }

    /// Every proper prefix of a valid response payload is rejected.
    #[test]
    fn truncated_response_rejected(shape in request_strategy(), cut in 0.0f64..1.0) {
        let graph = consensus(shape.dims, &shape.targets).graph().clone();
        let outcome = build_request(&shape).solve();
        let served = ServedOutcome {
            store: outcome.store,
            iterations: outcome.iterations,
            stop_reason: outcome.stop_reason,
            final_residuals: outcome.final_residuals,
            elapsed: outcome.elapsed,
            lane: Lane::Solo,
            warm_started: false,
        };
        let bytes = encode_response(7, &Ok(served));
        let cut = ((bytes.len() as f64) * cut) as usize;
        prop_assert!(decode_response(&bytes[..cut], Some(&graph)).is_err());
    }

    /// Error responses roundtrip without needing a graph.
    #[test]
    fn error_response_roundtrips_graphless(
        id in 0u64..u64::MAX,
        chars in proptest::collection::vec(32u32..127, 0..64),
    ) {
        let msg: String = chars.iter().map(|&c| char::from_u32(c).unwrap()).collect();
        let bytes = encode_response(id, &Err(msg.clone()));
        let (rid, result) = decode_response(&bytes, None).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(result.err().unwrap(), msg);
    }
}

/// A frame whose length prefix exceeds [`MAX_FRAME_LEN`] is rejected
/// before any payload allocation.
#[test]
fn oversized_frame_rejected_by_transport() {
    let mut wire = Vec::new();
    wire.extend_from_slice(&((MAX_FRAME_LEN as u32) + 1).to_le_bytes());
    wire.extend_from_slice(&[0u8; 16]);
    let mut cursor = Cursor::new(wire);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(FrameError::Oversized(n)) if n == MAX_FRAME_LEN + 1
    ));
}

/// A frame cut mid-payload surfaces as a truncation error, not EOF.
#[test]
fn torn_frame_rejected_by_transport() {
    let req = SolveRequest::new(consensus(2, &[1.0, -4.0]))
        .with_stopping(StoppingCriteria::fixed_iterations(5));
    let payload = encode_request(1, &req, false).unwrap();
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    wire.truncate(wire.len() - 3);
    let mut cursor = Cursor::new(wire);
    assert!(matches!(
        read_frame(&mut cursor),
        Err(FrameError::Truncated)
    ));
}
