//! Solver-as-a-service: a long-running parADMM solver process serving
//! [`paradmm_core::SolveRequest`]s over TCP with continuous batching.
//!
//! The paper's batched-solving result (block-diagonal fusion amortizes
//! sweep-launch overhead across many small instances) is an *offline*
//! result: [`paradmm_core::BatchSolver`] takes a closed set of problems
//! and runs them to completion. A serving workload is open-ended —
//! requests arrive continuously, and holding each one until the current
//! batch drains throws the fusion win away on latency. This crate
//! closes the gap with an LLM-serving-style *continuous batching*
//! engine:
//!
//! * **Admission queue** — incoming requests wait in a priority- and
//!   deadline-ordered queue ([`Priority`] descending, then earliest
//!   deadline, then arrival).
//! * **In-flight joins** — whenever the fused batch reaches a repack
//!   boundary (a residual check retired some instances, or a block just
//!   finished), queued requests whose `dims` match are spliced into the
//!   running batch. Mid-flight members keep *per-instance* iteration
//!   counters, so a joiner at iteration 0 coexists with a member at
//!   iteration 400.
//! * **Fleet lane** — requests that cannot join the fused batch
//!   (mismatched `dims`) and latency-critical requests
//!   ([`Priority::Critical`]) are served on a dedicated
//!   [`paradmm_core::FleetSolver`] round instead of waiting for batch
//!   coalescing.
//! * **Warm-start cache** — completed solutions are cached keyed by
//!   [`protocol::request_fingerprint`], which covers topology, ρ/α
//!   *and* every factor's prox-operator encoding; an exactly
//!   re-submitted problem starts from the cached state instead of
//!   zeros, while a same-shaped problem with different objectives gets
//!   a distinct key.
//!
//! **Bit-identity contract.** Joins, retires, priorities and deadlines
//! only change *when* work runs, never *what* runs: every request's
//! iterates — and its residual-check schedule, hence its stop iteration
//! — are bit-identical to a solo serial [`paradmm_core::Solver`] run of
//! the same request (same warm start included). Deadlines are
//! scheduling hints, never mid-solve aborts. See [`engine`] for the
//! block-scheduling rule that preserves this.
//!
//! The wire protocol ([`protocol`]) is a hand-rolled length-prefixed
//! binary format over `std::net` — no external dependencies — with
//! [`ServeClient`] as the blocking client and [`ServerHandle`] running
//! the accept loop plus engine thread.

pub mod cache;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;
mod wire;

pub use cache::WarmStartCache;
pub use client::{ClientError, ServeClient};
pub use engine::{Completion, Engine, EngineConfig, EngineRequest, EngineStats, Lane, ServeMode};
pub use paradmm_core::{Priority, SolveOutcome, SolveRequest};
pub use protocol::{DecodedRequest, ServedOutcome, WireError};
pub use server::{ServerConfig, ServerHandle};
