//! Blocking TCP client for the solve service.
//!
//! [`ServeClient`] supports pipelining: [`ServeClient::submit`] several
//! requests without waiting, then collect results with
//! [`ServeClient::recv_any`] / [`ServeClient::recv`] — responses may
//! arrive out of submission order (that is the point of continuous
//! batching: fast requests retire past slow ones). The client retains
//! each request's graph until its response arrives, because decoding
//! the response's store requires the graph shape.

use std::collections::HashMap;
use std::net::{TcpStream, ToSocketAddrs};

use paradmm_core::SolveRequest;
use paradmm_graph::io::{read_frame, write_frame, FrameError};
use paradmm_graph::FactorGraph;

use crate::protocol::{decode_response, encode_request, response_id, ServedOutcome, WireError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level framing failure.
    Frame(FrameError),
    /// The response payload failed to decode.
    Wire(WireError),
    /// The request could not be encoded (closure-backed prox).
    Encode(String),
    /// The server reported a request-level error.
    Server(String),
    /// The server closed the connection.
    Disconnected,
    /// A response arrived for an id this client never submitted (or
    /// already consumed).
    UnknownResponse(u64),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Encode(m) => write!(f, "cannot encode request: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Disconnected => write!(f, "server closed the connection"),
            ClientError::UnknownResponse(id) => write!(f, "unexpected response id {id}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// A blocking connection to a solve server.
pub struct ServeClient {
    stream: TcpStream,
    /// Graph of every in-flight request, keyed by wire id (needed to
    /// decode the response store).
    graphs: HashMap<u64, FactorGraph>,
    /// Responses read while waiting for a different id.
    ready: Vec<(u64, Result<ServedOutcome, String>)>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(ServeClient {
            stream: TcpStream::connect(addr)?,
            graphs: HashMap::new(),
            ready: Vec::new(),
            next_id: 0,
        })
    }

    /// Requests submitted but not yet received.
    pub fn in_flight(&self) -> usize {
        self.graphs.len() + self.ready.len()
    }

    /// Sends `request` without waiting for the result; returns the wire
    /// id to pass to [`ServeClient::recv`]. `use_cache` lets the server
    /// seed the solve from its warm-start cache.
    pub fn submit(&mut self, request: &SolveRequest, use_cache: bool) -> Result<u64, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        let payload = encode_request(id, request, use_cache).map_err(ClientError::Encode)?;
        write_frame(&mut self.stream, &payload)?;
        self.graphs.insert(id, request.problem().graph().clone());
        Ok(id)
    }

    /// Blocks for the next response, whichever request it answers.
    pub fn recv_any(&mut self) -> Result<(u64, Result<ServedOutcome, String>), ClientError> {
        if !self.ready.is_empty() {
            return Ok(self.ready.remove(0));
        }
        let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
        let id = response_id(&payload)?;
        // Error responses (including server-level bad-request reports)
        // carry no store, so a missing graph is only fatal for an OK
        // response — decode_response enforces that.
        let graph = self.graphs.remove(&id);
        let (id, result) = decode_response(&payload, graph.as_ref())?;
        Ok((id, result))
    }

    /// Blocks until the response for `id` arrives, buffering any other
    /// responses read along the way for later [`ServeClient::recv_any`]
    /// / [`ServeClient::recv`] calls.
    pub fn recv(&mut self, id: u64) -> Result<ServedOutcome, ClientError> {
        if let Some(pos) = self.ready.iter().position(|(rid, _)| *rid == id) {
            let (_, result) = self.ready.remove(pos);
            return result.map_err(ClientError::Server);
        }
        loop {
            let payload = read_frame(&mut self.stream)?.ok_or(ClientError::Disconnected)?;
            let rid = response_id(&payload)?;
            let graph = self.graphs.remove(&rid);
            let (rid, result) = decode_response(&payload, graph.as_ref())?;
            if rid == id {
                return result.map_err(ClientError::Server);
            }
            self.ready.push((rid, result));
        }
    }

    /// Submit-and-wait convenience for a single request.
    pub fn solve(
        &mut self,
        request: &SolveRequest,
        use_cache: bool,
    ) -> Result<ServedOutcome, ClientError> {
        let id = self.submit(request, use_cache)?;
        self.recv(id)
    }
}
