//! The TCP solve server: an accept loop, per-connection reader/writer
//! threads, and one engine thread running the continuous-batching
//! [`Engine`].
//!
//! Connection readers decode request frames in parallel and push them
//! into a shared inbox; the engine thread drains the inbox *between
//! every scheduling step*, which is what lets a request arriving
//! mid-solve join the running batch at the next repack boundary.
//! Responses are routed back through per-connection writer channels, so
//! slow clients never block the engine.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use paradmm_graph::io::{read_frame_or_cancel, write_frame, FrameError};

use crate::engine::{Completion, Engine, EngineConfig, EngineRequest};
use crate::protocol::{decode_request, encode_response, ServedOutcome};

/// Server configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerConfig {
    /// Engine tuning (mode, backend, batch size, cache).
    pub engine: EngineConfig,
}

/// How long blocked connection reads wait before re-checking the
/// shutdown flag. The timeout is only allowed to interrupt the stream
/// *between* frames — mid-frame it triggers a retry (or, during
/// shutdown, drops the connection) so a slow peer whose frame bytes
/// straddle the poll interval never desynchronizes the framing.
const READ_POLL: Duration = Duration::from_millis(50);

/// A decoded request plus the channel its response goes back on.
struct InboxItem {
    wire_id: u64,
    use_cache: bool,
    request: paradmm_core::SolveRequest,
    respond: Sender<Vec<u8>>,
}

struct Shared {
    inbox: Mutex<Vec<InboxItem>>,
    wake: Condvar,
    shutdown: AtomicBool,
}

/// A running solve server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the server threads running for
/// the life of the process.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<Engine>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl ServerHandle {
    /// Binds `addr` (use port 0 for an ephemeral port) and spawns the
    /// accept loop plus the engine thread.
    pub fn spawn(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            inbox: Mutex::new(Vec::new()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let readers = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let shared = Arc::clone(&shared);
            let readers = Arc::clone(&readers);
            std::thread::spawn(move || accept_loop(listener, shared, readers))
        };
        let engine = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || engine_loop(config.engine, shared))
        };
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            engine: Some(engine),
            readers,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the engine, joins every thread, and
    /// returns the final [`Engine`] (its stats and cache are useful to
    /// callers that want serving telemetry).
    pub fn shutdown(mut self) -> Engine {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake.notify_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let engine = self
            .engine
            .take()
            .expect("engine joined once")
            .join()
            .expect("engine thread does not panic");
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut self.readers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
        engine
    }
}

fn accept_loop(
    listener: TcpListener,
    shared: Arc<Shared>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        let handle = std::thread::spawn(move || connection_loop(stream, shared));
        // Reap connections that already closed, so a long-running
        // server does not accumulate dead-thread handles unboundedly.
        let mut readers = readers.lock().unwrap();
        let mut live = Vec::with_capacity(readers.len() + 1);
        for h in readers.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        live.push(handle);
        *readers = live;
    }
}

/// Reads frames off one connection, decoding and enqueueing each
/// request; a paired writer thread drains the response channel.
fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = channel::<Vec<u8>>();
    let writer = std::thread::spawn(move || {
        let mut stream = write_half;
        for frame in rx {
            if write_frame(&mut stream, &frame).is_err() {
                break;
            }
        }
    });

    let mut stream = stream;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        // Mid-frame poll timeouts retry inside read_frame_or_cancel
        // (aborting there would desync the stream); only a timeout at a
        // frame boundary — or one hit after shutdown began — comes back
        // as an error.
        match read_frame_or_cancel(&mut stream, || shared.shutdown.load(Ordering::SeqCst)) {
            Ok(Some(payload)) => match decode_request(&payload) {
                Ok(decoded) => {
                    let item = InboxItem {
                        wire_id: decoded.id,
                        use_cache: decoded.use_cache,
                        request: decoded.request,
                        respond: tx.clone(),
                    };
                    shared.inbox.lock().unwrap().push(item);
                    shared.wake.notify_all();
                }
                Err(e) => {
                    // The frame was well-delimited but undecodable:
                    // report and keep the connection (the stream is
                    // still frame-aligned).
                    let frame = encode_response(u64::MAX, &Err(format!("bad request: {e}")));
                    let _ = tx.send(frame);
                }
            },
            Ok(None) => break, // clean disconnect
            Err(FrameError::Io(e))
                if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut =>
            {
                continue; // poll the shutdown flag
            }
            Err(_) => break, // torn frame or transport error
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// The engine thread: drain the inbox, step the engine, send
/// completions — repeat. Draining *between* steps is the continuous
/// part of continuous batching.
fn engine_loop(config: EngineConfig, shared: Arc<Shared>) -> Engine {
    let mut engine = Engine::new(config);
    // Engine-scoped unique ids: wire ids are client-chosen and can
    // collide across connections.
    let mut next_internal: u64 = 0;
    let mut routes: HashMap<u64, (u64, Sender<Vec<u8>>)> = HashMap::new();

    loop {
        let drained: Vec<InboxItem> = {
            let mut inbox = shared.inbox.lock().unwrap();
            while inbox.is_empty() && engine.is_idle() && !shared.shutdown.load(Ordering::SeqCst) {
                inbox = shared.wake.wait(inbox).unwrap();
            }
            std::mem::take(&mut *inbox)
        };
        if drained.is_empty() && engine.is_idle() && shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        for item in drained {
            next_internal += 1;
            routes.insert(next_internal, (item.wire_id, item.respond));
            engine.submit(EngineRequest {
                id: next_internal,
                request: item.request,
                use_cache: item.use_cache,
            });
        }
        for completion in engine.step() {
            let Completion {
                id,
                outcome,
                lane,
                warm_started,
            } = completion;
            let Some((wire_id, respond)) = routes.remove(&id) else {
                continue;
            };
            let served = ServedOutcome {
                store: outcome.store,
                iterations: outcome.iterations,
                stop_reason: outcome.stop_reason,
                final_residuals: outcome.final_residuals,
                elapsed: outcome.elapsed,
                lane,
                warm_started,
            };
            // A send error just means the client went away.
            let _ = respond.send(encode_response(wire_id, &Ok(served)));
        }
    }
    engine
}
