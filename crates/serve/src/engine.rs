//! The continuous-batching serve engine.
//!
//! [`Engine`] is the deterministic, single-threaded scheduling core of
//! the service (the server wraps it in one thread; tests drive it
//! directly with [`Engine::step`]). It maintains:
//!
//! * an **admission queue** ordered by ([`Priority`] descending,
//!   earliest deadline, arrival order),
//! * one **fused batch** ("the pack") of in-flight instances sharing
//!   `dims`, block-diagonally fused with
//!   [`paradmm_graph::BatchStore::pack`] and driven through a single
//!   backend, and
//! * a **fleet lane**: [`FleetSolver`] rounds for requests that cannot
//!   join the pack (mismatched `dims`) or should not wait for it
//!   ([`Priority::Critical`]).
//!
//! # Continuous batching and the per-instance block rule
//!
//! Unlike [`paradmm_core::BatchSolver`] — which runs a *closed* batch
//! with one global iteration counter — pack members here carry their
//! own `done` counters so requests can join mid-flight. Each
//! [`Engine::step`]:
//!
//! 1. splices queued compatible requests into the pack (a *join*, at a
//!    repack boundary only),
//! 2. runs one fused block of `min over members of (next_event_i −
//!    done_i)` iterations, where `next_event_i` is member *i*'s next
//!    solo residual-check point (`check_every_i` multiples, capped at
//!    `max_iters_i`; for fixed-iteration requests, `max_iters_i`),
//! 3. checks per-member residuals exactly when `done_i` lands on a
//!    check point, retiring converged/budget-exhausted members and
//!    repacking the survivors.
//!
//! Because the fused graph is block-diagonal, iterate sequences are
//! unaffected by how iterations are partitioned into blocks; the rule
//! above makes each member's *residual-check schedule* (and therefore
//! its stop iteration) land exactly on its solo
//! [`paradmm_core::Solver::run`] schedule. Together these give the
//! serving bit-identity contract: every served request returns the
//! bit-identical store and iteration count of a solo serial solve with
//! the same warm start — regardless of who else was in the pack, when
//! they joined, or which backend executed the fused blocks.

use std::time::Instant;

use paradmm_core::{
    AdmmProblem, BackendSpec, FleetSolver, Priority, ReplanPolicy, ReplanState, Residuals,
    SolveOutcome, SolveRequest, SolverOptions, StopReason, StoppingCriteria, SweepExecutor,
    SweepPlan, UpdateTimings,
};
use paradmm_graph::{BatchInstance, BatchLayout, BatchStore, EdgeParams, FactorGraph, VarStore};
use paradmm_prox::ProxOp;

use crate::cache::WarmStartCache;
use crate::protocol::request_fingerprint;

/// Which execution path served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    /// One-at-a-time execution ([`ServeMode::Solo`], the ablation
    /// baseline).
    Solo,
    /// The continuously-batched fused pack.
    Batch,
    /// A dedicated [`FleetSolver`] round (mixed `dims` or
    /// [`Priority::Critical`]).
    Fleet,
}

impl Lane {
    /// Stable wire encoding.
    pub fn as_u8(self) -> u8 {
        match self {
            Lane::Solo => 0,
            Lane::Batch => 1,
            Lane::Fleet => 2,
        }
    }

    /// Inverse of [`Lane::as_u8`].
    pub fn from_u8(v: u8) -> Option<Lane> {
        match v {
            0 => Some(Lane::Solo),
            1 => Some(Lane::Batch),
            2 => Some(Lane::Fleet),
            _ => None,
        }
    }
}

/// How the engine executes admitted requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Continuous batching (the point of this crate).
    #[default]
    Batched,
    /// One request at a time, in queue order — the per-request serving
    /// baseline the batched mode is benchmarked against.
    Solo,
}

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Execution mode.
    pub mode: ServeMode,
    /// Backend running the fused pack (and solo-mode requests).
    /// Bit-identity holds for any synchronous backend.
    pub backend: BackendSpec,
    /// Worker threads for fleet-lane rounds.
    pub fleet_threads: usize,
    /// Maximum instances fused into the pack at once; further
    /// compatible requests wait in the queue for a retire.
    pub max_batch: usize,
    /// Warm-start cache entries (`0` disables the cache).
    pub cache_capacity: usize,
    /// Online replanning for the fused pack: re-measure per-pass costs
    /// on this cadence and re-plan (and ask the backend to re-partition)
    /// when operator costs drift — see [`ReplanPolicy`]. `None` keeps
    /// the shape-cached fused plan frozen between repacks. Replans
    /// change scheduling only, never iterates, so the serving
    /// bit-identity contract is unaffected.
    pub replan: Option<ReplanPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ServeMode::Batched,
            backend: BackendSpec::Serial,
            fleet_threads: 2,
            max_batch: 64,
            cache_capacity: 128,
            replan: None,
        }
    }
}

/// A request under a server-assigned id.
pub struct EngineRequest {
    /// Engine-scoped id echoed back on the [`Completion`].
    pub id: u64,
    /// The work.
    pub request: SolveRequest,
    /// Whether the warm-start cache may seed this solve (ignored when
    /// the request carries an explicit warm start).
    pub use_cache: bool,
}

/// A finished request.
pub struct Completion {
    /// Id from the [`EngineRequest`].
    pub id: u64,
    /// The solve result; `elapsed` covers admission to completion.
    pub outcome: SolveOutcome,
    /// Which lane served it.
    pub lane: Lane,
    /// Whether the solve was seeded from the warm-start cache.
    pub warm_started: bool,
}

/// Counters describing what the engine has done so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Requests admitted.
    pub submitted: u64,
    /// Requests completed (all lanes).
    pub completed: u64,
    /// Completions served by the fused pack.
    pub batch_served: u64,
    /// Completions served by fleet rounds.
    pub fleet_served: u64,
    /// Completions served one-at-a-time ([`ServeMode::Solo`]).
    pub solo_served: u64,
    /// Requests spliced into an *already running* pack.
    pub joins: u64,
    /// Pack rebuilds (joins and retires both repack).
    pub repacks: u64,
    /// Warm-start cache hits.
    pub cache_hits: u64,
    /// Largest pack size observed.
    pub max_pack: usize,
}

/// An admitted request waiting for a lane.
struct Pending {
    id: u64,
    seq: u64,
    graph: FactorGraph,
    params: EdgeParams,
    proxes: Vec<Box<dyn ProxOp>>,
    stopping: StoppingCriteria,
    priority: Priority,
    /// Absolute deadline (admission time + requested budget) — EDF
    /// ordering must compare these, not raw budgets, or a request that
    /// has already burned most of its budget waiting sorts behind a
    /// fresh one with a nominally tighter budget.
    deadline_at: Option<Instant>,
    warm: Option<VarStore>,
    warm_started: bool,
    /// Warm-start cache key covering topology, ρ/α *and* the prox
    /// operators; `None` (closure-backed operator, no stable encoding)
    /// bypasses the cache entirely.
    fingerprint: Option<u64>,
    admitted: Instant,
}

/// A pack member's bookkeeping (graph/params retained for repacks; the
/// proxes live inside the fused problem between repacks).
struct Member {
    id: u64,
    graph: FactorGraph,
    params: EdgeParams,
    stopping: StoppingCriteria,
    done: usize,
    final_residuals: Option<Residuals>,
    warm_started: bool,
    fingerprint: Option<u64>,
    admitted: Instant,
}

/// The fused in-flight batch.
struct Pack {
    problem: AdmmProblem,
    store: VarStore,
    layout: BatchLayout,
    members: Vec<Member>,
}

/// Member `i`'s next solo-schedule event after `done` iterations: its
/// next residual-check point, or `max_iters` for fixed-iteration
/// requests (retire without a check).
fn next_event(done: usize, s: &StoppingCriteria) -> usize {
    if s.check_every == usize::MAX {
        s.max_iters
    } else {
        let ce = s.check_every.max(1);
        ((done / ce) + 1).saturating_mul(ce).min(s.max_iters)
    }
}

/// The deterministic, steppable continuous-batching core. See the
/// module docs for the scheduling rules.
pub struct Engine {
    config: EngineConfig,
    cache: WarmStartCache,
    queue: Vec<Pending>,
    pack: Option<Pack>,
    backend: Box<dyn SweepExecutor>,
    plan_cache: Option<((usize, usize, usize), SweepPlan)>,
    /// Replan counters/baseline for the *current* pack composition;
    /// reset at every repack boundary (the fused problem — and with it
    /// the cost profile the baseline describes — changes there).
    replan_state: ReplanState,
    timings: UpdateTimings,
    seq: u64,
    stats: EngineStats,
}

impl Engine {
    /// An idle engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            cache: WarmStartCache::new(config.cache_capacity),
            backend: config.backend.to_scheduler().to_backend(),
            config,
            queue: Vec::new(),
            pack: None,
            plan_cache: None,
            replan_state: ReplanState::default(),
            timings: UpdateTimings::new(),
            seq: 0,
            stats: EngineStats::default(),
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The warm-start cache (hit/miss counters, size).
    pub fn cache(&self) -> &WarmStartCache {
        &self.cache
    }

    /// Replan counters for the current pack composition (resets at
    /// every repack boundary). Always default when
    /// [`EngineConfig::replan`] is `None`.
    pub fn replan_state(&self) -> &ReplanState {
        &self.replan_state
    }

    /// Whether no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.pack.is_none()
    }

    /// Queued requests not yet in any lane.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Instances currently fused in the pack.
    pub fn pack_len(&self) -> usize {
        self.pack.as_ref().map_or(0, |p| p.members.len())
    }

    /// Admits a request: resolves its warm start (explicit beats
    /// cache), then places it in the admission queue.
    pub fn submit(&mut self, req: EngineRequest) {
        let EngineRequest {
            id,
            request,
            use_cache,
        } = req;
        let parts = request.into_parts();
        let (graph, proxes, params) = parts.problem.into_parts();
        // Key the cache on the full problem — structure, ρ/α and prox
        // operators — never on shape alone: two MPC ticks share a
        // controller but not targets, and one client's solution must
        // not seed another client's different problem.
        let fingerprint = request_fingerprint(&graph, &params, &proxes);
        let mut warm = parts.warm_start;
        let mut warm_started = false;
        if warm.is_none() && use_cache {
            if let Some(cached) = fingerprint.and_then(|fp| self.cache.get(fp)) {
                // Fingerprints hash the problem, they don't prove it;
                // verify the shape before seeding.
                if cached.dims() == graph.dims()
                    && cached.num_edges() == graph.num_edges()
                    && cached.num_vars() == graph.num_vars()
                {
                    warm = Some(cached);
                    warm_started = true;
                    self.stats.cache_hits += 1;
                }
            }
        }
        self.seq += 1;
        self.stats.submitted += 1;
        let admitted = Instant::now();
        self.queue.push(Pending {
            id,
            seq: self.seq,
            graph,
            params,
            proxes,
            stopping: parts.stopping,
            priority: parts.priority,
            deadline_at: parts.deadline.and_then(|d| admitted.checked_add(d)),
            warm,
            warm_started,
            fingerprint,
            admitted,
        });
    }

    /// Runs one scheduling cycle and returns the requests that finished
    /// during it. In [`ServeMode::Batched`]: admit joiners → run any
    /// fleet round → run one fused block → check/retire/repack. In
    /// [`ServeMode::Solo`]: serve the whole queue one request at a
    /// time. Call repeatedly until [`Engine::is_idle`].
    pub fn step(&mut self) -> Vec<Completion> {
        let completions = match self.config.mode {
            ServeMode::Solo => self.step_solo(),
            ServeMode::Batched => self.step_batched(),
        };
        self.stats.completed += completions.len() as u64;
        completions
    }

    /// Convenience driver: steps until idle, collecting completions.
    pub fn run_until_idle(&mut self) -> Vec<Completion> {
        let mut all = Vec::new();
        while !self.is_idle() {
            all.extend(self.step());
        }
        all
    }

    /// Admission-queue ordering: priority descending, then earliest
    /// *absolute* deadline — admission time plus budget, so a request
    /// that has already waited keeps its urgency (requests without a
    /// deadline sort last) — then arrival.
    fn sort_queue(&mut self) {
        use std::cmp::Ordering;
        self.queue.sort_by(|a, b| {
            b.priority
                .cmp(&a.priority)
                .then_with(|| match (a.deadline_at, b.deadline_at) {
                    (Some(da), Some(db)) => da.cmp(&db),
                    (Some(_), None) => Ordering::Less,
                    (None, Some(_)) => Ordering::Greater,
                    (None, None) => Ordering::Equal,
                })
                .then_with(|| a.seq.cmp(&b.seq))
        });
    }

    fn step_solo(&mut self) -> Vec<Completion> {
        self.sort_queue();
        let pending = std::mem::take(&mut self.queue);
        let mut completions = Vec::with_capacity(pending.len());
        for p in pending {
            if p.stopping.max_iters == 0 {
                completions.push(Self::empty_budget_completion(p, Lane::Solo));
                continue;
            }
            let problem = AdmmProblem::with_params(p.graph, p.proxes, p.params);
            let options = SolverOptions {
                scheduler: self.config.backend.to_scheduler(),
                stopping: p.stopping,
                ..SolverOptions::default()
            };
            let mut solver = paradmm_core::Solver::from_problem(problem, options);
            if let Some(ws) = p.warm {
                *solver.store_mut() = ws;
            }
            let report = solver.run_default();
            let store = solver.into_store();
            if report.stop_reason == StopReason::Converged {
                if let Some(fp) = p.fingerprint {
                    self.cache.insert(fp, store.clone());
                }
            }
            self.stats.solo_served += 1;
            completions.push(Completion {
                id: p.id,
                outcome: SolveOutcome {
                    store,
                    iterations: report.iterations,
                    stop_reason: report.stop_reason,
                    final_residuals: report.final_residuals,
                    residual_trace: Vec::new(),
                    elapsed: p.admitted.elapsed(),
                },
                lane: Lane::Solo,
                warm_started: p.warm_started,
            });
        }
        completions
    }

    fn step_batched(&mut self) -> Vec<Completion> {
        let mut completions = Vec::new();
        self.sort_queue();

        // Route the queue: batch joiners share the pack's dims (or, with
        // no pack, the dims of the highest-priority queued request);
        // Critical requests and dims misfits go to a fleet round now.
        let pack_dims = self
            .pack
            .as_ref()
            .map(|p| p.layout.dims())
            .or_else(|| self.queue.first().map(|p| p.graph.dims()));
        let mut joiners: Vec<Pending> = Vec::new();
        let mut fleet: Vec<Pending> = Vec::new();
        let mut still_queued: Vec<Pending> = Vec::new();
        let room = self.config.max_batch.saturating_sub(self.pack_len());
        for p in std::mem::take(&mut self.queue) {
            if p.stopping.max_iters == 0 {
                completions.push(Self::empty_budget_completion(p, Lane::Batch));
            } else if p.priority == Priority::Critical || Some(p.graph.dims()) != pack_dims {
                fleet.push(p);
            } else if joiners.len() < room {
                joiners.push(p);
            } else {
                still_queued.push(p);
            }
        }
        self.queue = still_queued;

        if !fleet.is_empty() {
            completions.extend(self.run_fleet_round(fleet));
        }

        if !joiners.is_empty() {
            if self.pack.is_some() {
                self.stats.joins += joiners.len() as u64;
            }
            self.repack_with(joiners);
        }

        if self.pack.is_some() {
            completions.extend(self.run_pack_block());
        }

        completions
    }

    /// A request admitted with `max_iters == 0`: complete immediately
    /// (the solo loop never enters its body either).
    fn empty_budget_completion(p: Pending, lane: Lane) -> Completion {
        let store = p.warm.unwrap_or_else(|| VarStore::zeros(&p.graph));
        Completion {
            id: p.id,
            outcome: SolveOutcome {
                store,
                iterations: 0,
                stop_reason: StopReason::MaxIterations,
                final_residuals: None,
                residual_trace: Vec::new(),
                elapsed: p.admitted.elapsed(),
            },
            lane,
            warm_started: p.warm_started,
        }
    }

    /// Serves `batch` on dedicated [`FleetSolver`] rounds, one round
    /// per distinct stopping criteria (a fleet run has one stopping
    /// policy; fleets handle mixed graph shapes and `dims` natively).
    fn run_fleet_round(&mut self, mut batch: Vec<Pending>) -> Vec<Completion> {
        let mut completions = Vec::new();
        while !batch.is_empty() {
            let stopping = batch[0].stopping;
            let (round, rest): (Vec<_>, Vec<_>) =
                batch.into_iter().partition(|p| p.stopping == stopping);
            batch = rest;

            let options = SolverOptions {
                stopping,
                ..SolverOptions::default()
            };
            struct FleetMeta {
                id: u64,
                warm: Option<VarStore>,
                warm_started: bool,
                fingerprint: Option<u64>,
                admitted: Instant,
            }
            let mut problems = Vec::with_capacity(round.len());
            let mut meta = Vec::with_capacity(round.len());
            for p in round {
                problems.push(AdmmProblem::with_params(p.graph, p.proxes, p.params));
                meta.push(FleetMeta {
                    id: p.id,
                    warm: p.warm,
                    warm_started: p.warm_started,
                    fingerprint: p.fingerprint,
                    admitted: p.admitted,
                });
            }
            let mut fleet =
                FleetSolver::with_threads(problems, options, self.config.fleet_threads.max(1));
            for (i, m) in meta.iter_mut().enumerate() {
                if let Some(ws) = m.warm.take() {
                    fleet.warm_start(i, ws);
                }
            }
            let report = fleet.run_default();
            for (i, m) in meta.into_iter().enumerate() {
                let r = &report.instances[i];
                let store = fleet.store(i).clone();
                if r.stop_reason == StopReason::Converged {
                    if let Some(fp) = m.fingerprint {
                        self.cache.insert(fp, store.clone());
                    }
                }
                self.stats.fleet_served += 1;
                completions.push(Completion {
                    id: m.id,
                    outcome: SolveOutcome {
                        store,
                        iterations: r.iterations,
                        stop_reason: r.stop_reason,
                        final_residuals: r.final_residuals,
                        residual_trace: Vec::new(),
                        elapsed: m.admitted.elapsed(),
                    },
                    lane: Lane::Fleet,
                    warm_started: m.warm_started,
                });
            }
        }
        completions
    }

    /// Rebuilds the fused pack from the current members' extracted
    /// states plus `joiners` (a repack boundary).
    fn repack_with(&mut self, joiners: Vec<Pending>) {
        let mut members: Vec<Member> = Vec::new();
        let mut states: Vec<VarStore> = Vec::new();
        let mut proxes: Vec<Vec<Box<dyn ProxOp>>> = Vec::new();

        if let Some(pack) = self.pack.take() {
            let Pack {
                problem,
                store,
                layout,
                members: old,
            } = pack;
            let (_graph, fused_proxes, _params) = problem.into_parts();
            let mut prox_iter = fused_proxes.into_iter();
            for (pos, member) in old.into_iter().enumerate() {
                let segment: Vec<Box<dyn ProxOp>> = prox_iter
                    .by_ref()
                    .take(layout.factor_range(pos).len())
                    .collect();
                states.push(layout.extract_store(&store, pos));
                proxes.push(segment);
                members.push(member);
            }
            debug_assert!(prox_iter.next().is_none());
            self.stats.repacks += 1;
        }

        for p in joiners {
            states.push(p.warm.unwrap_or_else(|| VarStore::zeros(&p.graph)));
            proxes.push(p.proxes);
            members.push(Member {
                id: p.id,
                graph: p.graph,
                params: p.params,
                stopping: p.stopping,
                done: 0,
                final_residuals: None,
                warm_started: p.warm_started,
                fingerprint: p.fingerprint,
                admitted: p.admitted,
            });
        }

        if members.is_empty() {
            self.replan_state = ReplanState::default();
            return;
        }
        // New fused problem, new cost profile: the replan baseline from
        // the previous composition no longer describes anything.
        self.replan_state = ReplanState::default();
        self.stats.max_pack = self.stats.max_pack.max(members.len());
        self.pack = Some(Self::pack_members(
            members,
            states,
            proxes,
            &mut self.plan_cache,
        ));
    }

    fn pack_members(
        members: Vec<Member>,
        states: Vec<VarStore>,
        proxes: Vec<Vec<Box<dyn ProxOp>>>,
        plan_cache: &mut Option<((usize, usize, usize), SweepPlan)>,
    ) -> Pack {
        let batch = {
            let views: Vec<BatchInstance<'_>> = members
                .iter()
                .zip(&states)
                .map(|(m, state)| BatchInstance {
                    graph: &m.graph,
                    params: &m.params,
                    store: state,
                })
                .collect();
            BatchStore::pack(&views).expect("members share dims by admission routing")
        };
        let (graph, params, store, layout) = batch.into_parts();
        let fused_proxes: Vec<Box<dyn ProxOp>> = proxes.into_iter().flatten().collect();
        let mut problem = AdmmProblem::with_params(graph, fused_proxes, params);
        // Same fused-plan cache as BatchSolver: keyed by pass shape, so
        // a repack with unchanged fused topology skips the rebuild.
        let g = problem.graph();
        let fp = (g.num_factors(), g.num_vars(), g.num_edges());
        let plan = match plan_cache {
            Some((cached_fp, plan)) if *cached_fp == fp => plan.clone(),
            _ => {
                let plan = SweepPlan::fused(&problem);
                *plan_cache = Some((fp, plan.clone()));
                plan
            }
        };
        problem.set_plan(plan);
        Pack {
            problem,
            store,
            layout,
            members,
        }
    }

    /// Runs one fused block sized to the nearest member event, then
    /// checks/retires members whose `done` landed on their own solo
    /// check schedule. Returns completions for retired members.
    fn run_pack_block(&mut self) -> Vec<Completion> {
        let mut completions = Vec::new();
        let Some(pack) = self.pack.as_mut() else {
            return completions;
        };

        let block = pack
            .members
            .iter()
            .map(|m| next_event(m.done, &m.stopping) - m.done)
            .min()
            .expect("pack is never empty");
        debug_assert!(block >= 1, "members at max_iters retire before packing");

        self.backend
            .run_block(&pack.problem, &mut pack.store, block, &mut self.timings);

        // Online replanning at the block boundary: re-measure per-pass
        // costs on the policy's cadence and, when the profile drifted,
        // install a fresh measured plan and let the backend re-partition
        // its shard assignment. The shape-keyed plan cache must follow,
        // or the next same-shape repack would reinstall the stale plan.
        if let Some(policy) = self.config.replan {
            if policy
                .maybe_replan(&mut self.replan_state, &mut pack.problem)
                .map(|costs| self.backend.repartition(&pack.problem, &costs))
                .is_some()
            {
                let g = pack.problem.graph();
                let fp = (g.num_factors(), g.num_vars(), g.num_edges());
                if let Some(plan) = pack.problem.plan() {
                    self.plan_cache = Some((fp, plan.clone()));
                }
            }
        }

        let d = pack.layout.dims();
        let mut retired: Vec<(usize, StopReason)> = Vec::new();
        for pos in 0..pack.members.len() {
            let m = &mut pack.members[pos];
            m.done += block;
            let s = m.stopping;
            let checks = s.check_every != usize::MAX;
            let at_check = checks && (m.done % s.check_every.max(1) == 0 || m.done == s.max_iters);
            let mut converged = false;
            if at_check {
                let er = pack.layout.edge_range(pos);
                let r = Residuals::compute_edge_range(
                    pack.problem.graph(),
                    pack.problem.params(),
                    &pack.store,
                    er.start,
                    er.end,
                );
                converged = r.converged(er.len() * d, s.eps_abs, s.eps_rel);
                m.final_residuals = Some(r);
            }
            if converged {
                retired.push((pos, StopReason::Converged));
            } else if m.done >= s.max_iters {
                retired.push((pos, StopReason::MaxIterations));
            }
        }

        if retired.is_empty() {
            return completions;
        }

        // Extract every member's state, complete the retired ones, and
        // repack the survivors (another repack boundary).
        let Pack {
            problem,
            store,
            layout,
            members,
        } = self.pack.take().expect("pack was just borrowed");
        let (_graph, fused_proxes, _params) = problem.into_parts();
        let mut prox_iter = fused_proxes.into_iter();
        let mut retired_iter = retired.iter().peekable();
        let mut surv_members = Vec::new();
        let mut surv_states = Vec::new();
        let mut surv_proxes = Vec::new();
        for (pos, member) in members.into_iter().enumerate() {
            let segment: Vec<Box<dyn ProxOp>> = prox_iter
                .by_ref()
                .take(layout.factor_range(pos).len())
                .collect();
            let state = layout.extract_store(&store, pos);
            if retired_iter.peek().map(|(p, _)| *p) == Some(pos) {
                let (_, stop_reason) = *retired_iter.next().expect("peeked");
                if stop_reason == StopReason::Converged {
                    if let Some(fp) = member.fingerprint {
                        self.cache.insert(fp, state.clone());
                    }
                }
                self.stats.batch_served += 1;
                completions.push(Completion {
                    id: member.id,
                    outcome: SolveOutcome {
                        store: state,
                        iterations: member.done,
                        stop_reason,
                        final_residuals: member.final_residuals,
                        residual_trace: Vec::new(),
                        elapsed: member.admitted.elapsed(),
                    },
                    lane: Lane::Batch,
                    warm_started: member.warm_started,
                });
            } else {
                surv_members.push(member);
                surv_states.push(state);
                surv_proxes.push(segment);
            }
        }
        debug_assert!(prox_iter.next().is_none());
        // Retire is a repack boundary too: whatever survives is a new
        // fused problem with a new cost profile.
        self.replan_state = ReplanState::default();
        if !surv_members.is_empty() {
            self.stats.repacks += 1;
            self.stats.max_pack = self.stats.max_pack.max(surv_members.len());
            self.pack = Some(Self::pack_members(
                surv_members,
                surv_states,
                surv_proxes,
                &mut self.plan_cache,
            ));
        }
        completions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradmm_core::Solver;
    use paradmm_graph::GraphBuilder;
    use paradmm_prox::QuadraticProx;
    use std::time::Duration;

    /// Consensus of `k` quadratics over one variable (dims
    /// configurable); the optimum is the mean of the targets.
    fn consensus(dims: usize, targets: &[f64]) -> AdmmProblem {
        let mut b = GraphBuilder::new(dims);
        let v = b.add_var();
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for &t in targets {
            b.add_factor(&[v]);
            let target: Vec<f64> = (0..dims).map(|c| t + c as f64).collect();
            proxes.push(Box::new(QuadraticProx::isotropic(dims, 2.0, &target)));
        }
        AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
    }

    fn request(dims: usize, targets: &[f64], stopping: StoppingCriteria) -> SolveRequest {
        SolveRequest::new(consensus(dims, targets)).with_stopping(stopping)
    }

    fn solo(dims: usize, targets: &[f64], stopping: StoppingCriteria) -> SolveOutcome {
        request(dims, targets, stopping).solve()
    }

    fn tight() -> StoppingCriteria {
        StoppingCriteria {
            max_iters: 2000,
            eps_abs: 1e-10,
            eps_rel: 1e-9,
            check_every: 10,
        }
    }

    fn by_id(mut completions: Vec<Completion>) -> Vec<Completion> {
        completions.sort_by_key(|c| c.id);
        completions
    }

    #[test]
    fn batched_stream_matches_solo_bitwise() {
        let mut engine = Engine::new(EngineConfig::default());
        let workloads: Vec<&[f64]> = vec![
            &[1.0, 5.0, 9.0],
            &[2.0, 4.0],
            &[-3.0, 0.0, 3.0, 6.0],
            &[7.0],
        ];
        for (i, t) in workloads.iter().enumerate() {
            engine.submit(EngineRequest {
                id: i as u64,
                request: request(1, t, tight()),
                use_cache: false,
            });
        }
        let completions = by_id(engine.run_until_idle());
        assert_eq!(completions.len(), workloads.len());
        for (c, t) in completions.iter().zip(&workloads) {
            let reference = solo(1, t, tight());
            assert_eq!(c.lane, Lane::Batch);
            assert_eq!(c.outcome.iterations, reference.iterations, "id {}", c.id);
            assert_eq!(c.outcome.stop_reason, reference.stop_reason);
            assert_eq!(c.outcome.store.z, reference.store.z, "id {}", c.id);
            assert_eq!(c.outcome.store.x, reference.store.x, "id {}", c.id);
            assert_eq!(c.outcome.store.u, reference.store.u, "id {}", c.id);
            assert_eq!(c.outcome.store.n, reference.store.n, "id {}", c.id);
            let (a, b) = (
                c.outcome.final_residuals.unwrap(),
                reference.final_residuals.unwrap(),
            );
            assert_eq!(a.primal, b.primal, "id {}", c.id);
            assert_eq!(a.dual, b.dual, "id {}", c.id);
        }
        assert!(engine.stats().batch_served == workloads.len() as u64);
    }

    #[test]
    fn mid_flight_join_stays_bit_identical() {
        let mut engine = Engine::new(EngineConfig::default());
        // A slow request enters alone...
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0, 9.0, -7.0, 3.0], tight()),
            use_cache: false,
        });
        let mut completions = engine.step();
        assert!(completions.is_empty(), "slow request is still in flight");
        assert_eq!(engine.pack_len(), 1);
        // ...then a second request joins the running pack mid-flight.
        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[2.0, 4.0], tight()),
            use_cache: false,
        });
        completions.extend(engine.run_until_idle());
        let completions = by_id(completions);
        assert_eq!(completions.len(), 2);
        assert!(engine.stats().joins >= 1, "second request joined in flight");

        let ref1 = solo(1, &[1.0, 5.0, 9.0, -7.0, 3.0], tight());
        let ref2 = solo(1, &[2.0, 4.0], tight());
        assert_eq!(completions[0].outcome.iterations, ref1.iterations);
        assert_eq!(completions[0].outcome.store.z, ref1.store.z);
        assert_eq!(completions[0].outcome.store.u, ref1.store.u);
        assert_eq!(completions[1].outcome.iterations, ref2.iterations);
        assert_eq!(completions[1].outcome.store.z, ref2.store.z);
        assert_eq!(completions[1].outcome.store.u, ref2.store.u);
    }

    #[test]
    fn mixed_check_schedules_coexist_in_one_pack() {
        // Different check_every / max_iters per member: the per-member
        // block rule must reproduce each one's solo check schedule.
        let s1 = StoppingCriteria {
            max_iters: 500,
            eps_abs: 1e-9,
            eps_rel: 1e-8,
            check_every: 7,
        };
        let s2 = StoppingCriteria {
            max_iters: 64,
            eps_abs: 0.0,
            eps_rel: 0.0,
            check_every: 25, // checks at 25, 50, 64; never converges
        };
        let s3 = StoppingCriteria::fixed_iterations(33);
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0, 9.0], s1),
            use_cache: false,
        });
        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[2.0, 4.0], s2),
            use_cache: false,
        });
        engine.submit(EngineRequest {
            id: 3,
            request: request(1, &[8.0], s3),
            use_cache: false,
        });
        let completions = by_id(engine.run_until_idle());
        assert_eq!(completions.len(), 3);

        for (c, reference) in completions.iter().zip([
            solo(1, &[1.0, 5.0, 9.0], s1),
            solo(1, &[2.0, 4.0], s2),
            solo(1, &[8.0], s3),
        ]) {
            assert_eq!(c.outcome.iterations, reference.iterations, "id {}", c.id);
            assert_eq!(c.outcome.stop_reason, reference.stop_reason, "id {}", c.id);
            assert_eq!(c.outcome.store.z, reference.store.z, "id {}", c.id);
            assert_eq!(
                c.outcome.final_residuals.map(|r| (r.primal, r.dual)),
                reference.final_residuals.map(|r| (r.primal, r.dual)),
                "id {}",
                c.id
            );
        }
    }

    #[test]
    fn mixed_dims_requests_route_to_fleet_lane() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], tight()),
            use_cache: false,
        });
        engine.submit(EngineRequest {
            id: 2,
            request: request(3, &[2.0, 4.0], tight()),
            use_cache: false,
        });
        let completions = by_id(engine.run_until_idle());
        assert_eq!(completions[0].lane, Lane::Batch);
        assert_eq!(
            completions[1].lane,
            Lane::Fleet,
            "dims misfit takes the fleet lane"
        );
        let reference = solo(3, &[2.0, 4.0], tight());
        assert_eq!(completions[1].outcome.iterations, reference.iterations);
        assert_eq!(completions[1].outcome.store.z, reference.store.z);
        assert_eq!(completions[1].outcome.store.u, reference.store.u);
        assert_eq!(engine.stats().fleet_served, 1);
    }

    #[test]
    fn critical_priority_skips_batch_coalescing() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], tight()),
            use_cache: false,
        });
        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[2.0, 4.0], tight()).with_priority(Priority::Critical),
            use_cache: false,
        });
        // The critical request completes on the very first step, before
        // the batch lane finishes anything.
        let first = engine.step();
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].id, 2);
        assert_eq!(first[0].lane, Lane::Fleet);
        let reference = solo(1, &[2.0, 4.0], tight());
        assert_eq!(first[0].outcome.iterations, reference.iterations);
        assert_eq!(first[0].outcome.store.z, reference.store.z);
        let rest = engine.run_until_idle();
        assert_eq!(rest.len(), 1);
    }

    #[test]
    fn warm_start_cache_seeds_resubmission() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0, 9.0], tight()),
            use_cache: true,
        });
        let first = engine.run_until_idle();
        assert!(!first[0].warm_started);
        assert!(first[0].outcome.stop_reason == StopReason::Converged);

        // The identical problem again: seeded from the cache, and
        // bit-identical to a solo solve given the same warm start.
        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[1.0, 5.0, 9.0], tight()),
            use_cache: true,
        });
        let second = engine.run_until_idle();
        assert!(second[0].warm_started, "cache hit seeds the solve");
        assert_eq!(second[0].outcome.stop_reason, StopReason::Converged);
        assert_eq!(engine.stats().cache_hits, 1);

        let reference = request(1, &[1.0, 5.0, 9.0], tight())
            .with_warm_start(first[0].outcome.store.clone())
            .solve();
        assert_eq!(second[0].outcome.iterations, reference.iterations);
        assert_eq!(second[0].outcome.store.z, reference.store.z);
        assert!(
            second[0].outcome.iterations <= first[0].outcome.iterations,
            "warm start cannot be slower than cold on an already-converged state"
        );

        // A *different* problem must not hit the cache.
        engine.submit(EngineRequest {
            id: 3,
            request: request(1, &[6.0, 6.5], tight()),
            use_cache: true,
        });
        let third = engine.run_until_idle();
        assert!(!third[0].warm_started);
    }

    #[test]
    fn same_shape_different_objective_misses_the_cache() {
        // The MPC trap: identical topology and ρ/α, different prox
        // targets. Shape-only fingerprinting would collide here and
        // leak one problem's solution into the other's trajectory.
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], tight()),
            use_cache: true,
        });
        let first = engine.run_until_idle();
        assert_eq!(first[0].outcome.stop_reason, StopReason::Converged);

        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[2.0, 4.0], tight()),
            use_cache: true,
        });
        let second = engine.run_until_idle();
        assert!(
            !second[0].warm_started,
            "same shape, different targets: no cache hit"
        );
        assert_eq!(engine.stats().cache_hits, 0);
        // And the result is the cold solo reference, untouched by the
        // cached solution of the other problem.
        let reference = solo(1, &[2.0, 4.0], tight());
        assert_eq!(second[0].outcome.iterations, reference.iterations);
        assert_eq!(second[0].outcome.store.z, reference.store.z);

        // The exact same problem still hits.
        engine.submit(EngineRequest {
            id: 3,
            request: request(1, &[1.0, 5.0], tight()),
            use_cache: true,
        });
        let third = engine.run_until_idle();
        assert!(third[0].warm_started);
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn closure_prox_requests_bypass_the_cache() {
        // NumericProx has no ProxSpec, hence no stable identity: the
        // request must solve fine but never seed or populate the cache.
        fn numeric_request() -> SolveRequest {
            let mut b = GraphBuilder::new(1);
            let v = b.add_var();
            b.add_factor(&[v]);
            let proxes: Vec<Box<dyn ProxOp>> =
                vec![Box::new(paradmm_prox::NumericProx::new(|s: &[f64]| {
                    (s[0] - 2.0) * (s[0] - 2.0)
                }))];
            SolveRequest::new(AdmmProblem::new(b.build(), proxes, 1.0, 1.0)).with_stopping(tight())
        }
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: numeric_request(),
            use_cache: true,
        });
        let first = engine.run_until_idle();
        assert_eq!(first.len(), 1);
        assert!(engine.cache().is_empty(), "no key, nothing cached");

        engine.submit(EngineRequest {
            id: 2,
            request: numeric_request(),
            use_cache: true,
        });
        let second = engine.run_until_idle();
        assert!(!second[0].warm_started);
        assert_eq!(engine.stats().cache_hits, 0);
    }

    #[test]
    fn online_replan_keeps_batched_serving_bit_identical() {
        // Cadence-1 policy: measure after every fused block. Replans
        // change scheduling only, so the completion must still be the
        // bit-identical solo reference.
        let config = EngineConfig {
            replan: Some(ReplanPolicy::new(1, 0.25)),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0, 9.0], tight()),
            use_cache: false,
        });
        let mut completions = Vec::new();
        let mut measured_in_flight = false;
        while !engine.is_idle() {
            completions.extend(engine.step());
            if engine.pack_len() > 0 {
                measured_in_flight |= engine.replan_state().baseline.is_some();
            }
        }
        assert!(
            measured_in_flight,
            "cadence-1 policy must measure between blocks while the pack is live"
        );
        assert_eq!(
            engine.replan_state().blocks_seen,
            0,
            "replan state resets at the final repack boundary"
        );
        let reference = solo(1, &[1.0, 5.0, 9.0], tight());
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].outcome.iterations, reference.iterations);
        assert_eq!(completions[0].outcome.store.z, reference.store.z);
        assert_eq!(completions[0].outcome.store.u, reference.store.u);
    }

    #[test]
    fn edf_orders_by_absolute_deadline_not_raw_budget() {
        let config = EngineConfig {
            mode: ServeMode::Solo,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        // Request 1 carries the nominally looser 900ms budget...
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], tight()).with_deadline(Duration::from_millis(900)),
            use_cache: false,
        });
        // ...but has been waiting so long that only 50ms of it remain
        // (simulated by backdating its admission-time deadline).
        engine.queue[0].deadline_at = Some(Instant::now() + Duration::from_millis(50));
        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[2.0, 4.0], tight()).with_deadline(Duration::from_millis(100)),
            use_cache: false,
        });
        let order: Vec<u64> = engine.run_until_idle().iter().map(|c| c.id).collect();
        assert_eq!(
            order,
            vec![1, 2],
            "the nearer absolute deadline wins, regardless of raw budget"
        );
    }

    #[test]
    fn explicit_warm_start_beats_cache() {
        let mut engine = Engine::new(EngineConfig::default());
        let seed = {
            let mut s = VarStore::zeros(consensus(1, &[1.0, 5.0]).graph());
            s.n[0] = 0.7;
            s.snapshot_z();
            s
        };
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], tight()).with_warm_start(seed.clone()),
            use_cache: true,
        });
        let done = engine.run_until_idle();
        assert!(
            !done[0].warm_started,
            "explicit warm start is not a cache hit"
        );
        let reference = request(1, &[1.0, 5.0], tight())
            .with_warm_start(seed)
            .solve();
        assert_eq!(done[0].outcome.iterations, reference.iterations);
        assert_eq!(done[0].outcome.store.z, reference.store.z);
    }

    #[test]
    fn max_batch_defers_overflow_to_the_queue() {
        let config = EngineConfig {
            max_batch: 2,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        for i in 0..5 {
            engine.submit(EngineRequest {
                id: i,
                request: request(1, &[1.0 + i as f64, 5.0], tight()),
                use_cache: false,
            });
        }
        let mut served = 0;
        while !engine.is_idle() {
            assert!(engine.pack_len() <= 2, "pack never exceeds max_batch");
            served += engine.step().len();
        }
        assert_eq!(served, 5);
        // Everything still matches solo.
        assert_eq!(engine.stats().batch_served, 5);
    }

    #[test]
    fn solo_mode_serves_in_priority_then_deadline_order() {
        let config = EngineConfig {
            mode: ServeMode::Solo,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], tight()).with_deadline(Duration::from_millis(900)),
            use_cache: false,
        });
        engine.submit(EngineRequest {
            id: 2,
            request: request(1, &[2.0, 4.0], tight()).with_deadline(Duration::from_millis(100)),
            use_cache: false,
        });
        engine.submit(EngineRequest {
            id: 3,
            request: request(1, &[3.0, 3.5], tight()).with_priority(Priority::High),
            use_cache: false,
        });
        let completions = engine.run_until_idle();
        let order: Vec<u64> = completions.iter().map(|c| c.id).collect();
        assert_eq!(
            order,
            vec![3, 2, 1],
            "priority first, then earliest deadline"
        );
        assert!(completions.iter().all(|c| c.lane == Lane::Solo));
        let reference = solo(1, &[2.0, 4.0], tight());
        let c2 = completions.iter().find(|c| c.id == 2).unwrap();
        assert_eq!(c2.outcome.store.z, reference.store.z);
        assert_eq!(c2.outcome.iterations, reference.iterations);
    }

    #[test]
    fn empty_iteration_budget_completes_immediately() {
        let mut engine = Engine::new(EngineConfig::default());
        engine.submit(EngineRequest {
            id: 1,
            request: request(1, &[1.0, 5.0], StoppingCriteria::fixed_iterations(0)),
            use_cache: false,
        });
        let completions = engine.run_until_idle();
        assert_eq!(completions.len(), 1);
        assert_eq!(completions[0].outcome.iterations, 0);
        assert_eq!(
            completions[0].outcome.stop_reason,
            StopReason::MaxIterations
        );
    }

    #[test]
    fn worksteal_backend_pack_stays_bit_identical() {
        let config = EngineConfig {
            backend: "worksteal:2".parse().unwrap(),
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(config);
        for (i, t) in [[1.0, 5.0], [2.0, 4.0]].iter().enumerate() {
            engine.submit(EngineRequest {
                id: i as u64,
                request: request(1, t, tight()),
                use_cache: false,
            });
        }
        for c in by_id(engine.run_until_idle()) {
            let t = [[1.0, 5.0], [2.0, 4.0]][c.id as usize];
            let reference = solo(1, &t, tight());
            assert_eq!(c.outcome.iterations, reference.iterations);
            assert_eq!(c.outcome.store.z, reference.store.z);
        }
    }

    #[test]
    fn next_event_follows_the_solo_schedule() {
        let s = StoppingCriteria {
            max_iters: 60,
            eps_abs: 0.0,
            eps_rel: 0.0,
            check_every: 25,
        };
        assert_eq!(next_event(0, &s), 25);
        assert_eq!(next_event(3, &s), 25);
        assert_eq!(next_event(25, &s), 50);
        assert_eq!(next_event(50, &s), 60, "final partial block checks at max");
        let fixed = StoppingCriteria::fixed_iterations(40);
        assert_eq!(next_event(0, &fixed), 40);
        assert_eq!(next_event(17, &fixed), 40);
    }

    #[test]
    fn engine_uses_solver_reference_solo_path() {
        // Sanity-pin the reference: SolveRequest::solve and a raw
        // Solver::run agree, so the engine's contract is anchored to
        // the primary solver loop.
        let outcome = solo(1, &[1.0, 5.0, 9.0], tight());
        let mut solver = Solver::from_problem(
            consensus(1, &[1.0, 5.0, 9.0]),
            SolverOptions {
                stopping: tight(),
                ..SolverOptions::default()
            },
        );
        let report = solver.run(2000);
        assert_eq!(outcome.iterations, report.iterations);
        assert_eq!(outcome.store.z, solver.store().z);
    }
}
