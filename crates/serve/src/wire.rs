//! Little-endian primitive readers/writers for the wire protocol.
//!
//! `paradmm-graph`'s own byte helpers are `pub(crate)`, and the serve
//! protocol additionally needs bounds-checked reads over untrusted
//! input, so the codec keeps its own minimal pair: an appending writer
//! over `Vec<u8>` and a consuming [`Reader`] that fails with
//! [`WireError::Truncated`] instead of panicking when the buffer runs
//! short.

use crate::protocol::WireError;

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Length-prefixed byte blob (`u32` count + bytes).
pub(crate) fn put_blob(out: &mut Vec<u8>, blob: &[u8]) {
    assert!(blob.len() <= u32::MAX as usize, "blob exceeds u32 length");
    put_u32(out, blob.len() as u32);
    out.extend_from_slice(blob);
}

/// Length-prefixed `f64` vector (`u32` count + values).
pub(crate) fn put_vec_f64(out: &mut Vec<u8>, v: &[f64]) {
    assert!(v.len() <= u32::MAX as usize, "vector exceeds u32 length");
    put_u32(out, v.len() as u32);
    for &x in v {
        put_f64(out, x);
    }
}

/// Bounds-checked cursor over an untrusted byte buffer.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed byte blob; the claimed length is validated
    /// against the remaining buffer before any slicing.
    pub fn blob(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Length-prefixed `f64` vector; the claimed count is validated
    /// against the remaining buffer before allocating.
    pub fn vec_f64(&mut self) -> Result<Vec<f64>, WireError> {
        let count = self.u32()? as usize;
        if self.remaining() < count.checked_mul(8).ok_or(WireError::Truncated)? {
            return Err(WireError::Truncated);
        }
        let mut v = Vec::with_capacity(count);
        for _ in 0..count {
            v.push(self.f64()?);
        }
        Ok(v)
    }
}
