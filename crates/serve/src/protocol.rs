//! The serve wire protocol: length-prefixed binary frames carrying
//! [`SolveRequest`]s and their outcomes.
//!
//! Every frame (see [`paradmm_graph::io::read_frame`] /
//! [`paradmm_graph::io::write_frame`] for the `u32`-length transport
//! framing) starts with a 4-byte magic, a protocol version and a frame
//! kind, then the payload. All integers are little-endian; matrices
//! travel through the prox layer's [`ProxSpec`] value encoding and the
//! graph/params/store blobs reuse `paradmm_graph::io`'s existing
//! encoders, each wrapped in its own `u32` length prefix (the io
//! decoders read from the slice start and ignore trailing bytes, so
//! sub-blobs must be delimited here).
//!
//! Decoding treats the buffer as untrusted: every read is
//! bounds-checked, claimed lengths are validated against the remaining
//! bytes *before* allocation, [`ProxSpec::validate`] vets operator
//! parameters, and per-factor operator shapes are checked against the
//! decoded graph — a malformed frame yields [`WireError`], never a
//! panic in the serving process.

use std::time::Duration;

use paradmm_core::{AdmmProblem, Priority, Residuals, SolveRequest, StopReason, StoppingCriteria};
use paradmm_graph::{io, EdgeParams, FactorGraph, VarStore};
use paradmm_prox::{specs_for, ProxOp, ProxSpec};

use crate::engine::Lane;
use crate::wire::{put_blob, put_f64, put_u32, put_u64, put_u8, put_vec_f64, Reader};

/// Frame magic: "pAdS" (parADMM serve).
pub const MAGIC: [u8; 4] = *b"pAdS";
/// Protocol version; bumped on any incompatible layout change.
pub const VERSION: u32 = 1;
/// Frame kind byte for a solve request.
pub const KIND_REQUEST: u8 = 1;
/// Frame kind byte for a solve response.
pub const KIND_RESPONSE: u8 = 2;
/// Upper bound on `max_iters` accepted from the wire — a spinning
/// budget this large is a malformed request, not a workload.
pub const MAX_WIRE_ITERS: u64 = 100_000_000;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field being read.
    Truncated,
    /// The frame does not start with [`MAGIC`].
    BadMagic,
    /// The frame's version is not [`VERSION`].
    BadVersion(u32),
    /// The frame kind byte is not the expected one.
    BadKind(u8),
    /// A structurally valid frame carrying semantically invalid data.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadKind(k) => write!(f, "unexpected frame kind {k}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::IoError> for WireError {
    fn from(e: io::IoError) -> Self {
        WireError::Malformed(e.to_string())
    }
}

/// A request decoded off the wire.
pub struct DecodedRequest {
    /// Client-chosen request id, echoed back on the response.
    pub id: u64,
    /// Whether the server may seed this solve from its warm-start cache.
    pub use_cache: bool,
    /// The reconstructed request.
    pub request: SolveRequest,
}

/// What a served request produced — [`paradmm_core::SolveOutcome`] plus
/// the serving metadata (lane, cache use) the engine attaches.
#[derive(Debug, Clone)]
pub struct ServedOutcome {
    /// Final ADMM state.
    pub store: VarStore,
    /// Iterations executed.
    pub iterations: usize,
    /// Why iteration stopped.
    pub stop_reason: StopReason,
    /// Residuals at the final check (if any check ran).
    pub final_residuals: Option<Residuals>,
    /// Wall-clock from admission to completion.
    pub elapsed: Duration,
    /// Which execution lane served the request.
    pub lane: Lane,
    /// Whether the solve was seeded from the warm-start cache.
    pub warm_started: bool,
}

impl ServedOutcome {
    /// Whether the solve converged.
    pub fn converged(&self) -> bool {
        self.stop_reason == StopReason::Converged
    }
}

fn stop_reason_u8(r: StopReason) -> u8 {
    match r {
        StopReason::Converged => 0,
        StopReason::MaxIterations => 1,
    }
}

fn stop_reason_from_u8(v: u8) -> Result<StopReason, WireError> {
    match v {
        0 => Ok(StopReason::Converged),
        1 => Ok(StopReason::MaxIterations),
        _ => Err(WireError::Malformed(format!("unknown stop reason {v}"))),
    }
}

fn put_header(out: &mut Vec<u8>, kind: u8) {
    out.extend_from_slice(&MAGIC);
    put_u32(out, VERSION);
    put_u8(out, kind);
}

fn read_header(r: &mut Reader<'_>, expect_kind: u8) -> Result<(), WireError> {
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = r.u8().map_err(|_| WireError::Truncated)?;
    }
    if magic != MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(WireError::BadVersion(version));
    }
    let kind = r.u8()?;
    if kind != expect_kind {
        return Err(WireError::BadKind(kind));
    }
    Ok(())
}

fn put_spec(out: &mut Vec<u8>, spec: &ProxSpec) {
    match spec {
        ProxSpec::Zero => put_u8(out, 0),
        ProxSpec::Linear { g } => {
            put_u8(out, 1);
            put_vec_f64(out, g);
        }
        ProxSpec::Quadratic { q, g } => {
            put_u8(out, 2);
            put_vec_f64(out, q);
            put_vec_f64(out, g);
        }
        ProxSpec::Box { lo, hi } => {
            put_u8(out, 3);
            put_f64(out, *lo);
            put_f64(out, *hi);
        }
        ProxSpec::L1 { lambda } => {
            put_u8(out, 4);
            put_f64(out, *lambda);
        }
        ProxSpec::SemiLasso { lambda } => {
            put_u8(out, 5);
            put_f64(out, *lambda);
        }
        ProxSpec::Consensus => put_u8(out, 6),
        ProxSpec::AffineEquality {
            rows,
            cols,
            data,
            c,
        } => {
            put_u8(out, 7);
            put_u32(out, *rows as u32);
            put_u32(out, *cols as u32);
            put_vec_f64(out, data);
            put_vec_f64(out, c);
        }
    }
}

fn read_spec(r: &mut Reader<'_>) -> Result<ProxSpec, WireError> {
    let spec = match r.u8()? {
        0 => ProxSpec::Zero,
        1 => ProxSpec::Linear { g: r.vec_f64()? },
        2 => ProxSpec::Quadratic {
            q: r.vec_f64()?,
            g: r.vec_f64()?,
        },
        3 => ProxSpec::Box {
            lo: r.f64()?,
            hi: r.f64()?,
        },
        4 => ProxSpec::L1 { lambda: r.f64()? },
        5 => ProxSpec::SemiLasso { lambda: r.f64()? },
        6 => ProxSpec::Consensus,
        7 => ProxSpec::AffineEquality {
            rows: r.u32()? as usize,
            cols: r.u32()? as usize,
            data: r.vec_f64()?,
            c: r.vec_f64()?,
        },
        t => return Err(WireError::Malformed(format!("unknown prox tag {t}"))),
    };
    spec.validate().map_err(WireError::Malformed)?;
    Ok(spec)
}

/// The operator's expected flattened span for its factor, when the
/// spec fixes one (`None` for element-wise/span-agnostic operators).
fn spec_span(spec: &ProxSpec) -> Option<usize> {
    match spec {
        ProxSpec::Linear { g } => Some(g.len()),
        ProxSpec::Quadratic { q, .. } => Some(q.len()),
        ProxSpec::AffineEquality { cols, .. } => Some(*cols),
        _ => None,
    }
}

/// Deterministic 64-bit fingerprint of a *full* problem: the
/// [`io::problem_fingerprint`] structural base (topology + ρ/α) with
/// each factor's [`ProxSpec`] wire encoding folded in, so two problems
/// with identical structure but different objectives — the common MPC
/// pattern of one controller re-solved against new targets — get
/// distinct keys. This is the warm-start cache key; returns `None`
/// when any operator has no [`ProxSpec`] (a closure-backed operator
/// has no stable identity, so such requests are never cache-keyed).
pub fn request_fingerprint(
    graph: &FactorGraph,
    params: &EdgeParams,
    proxes: &[Box<dyn ProxOp>],
) -> Option<u64> {
    let specs = specs_for(proxes)?;
    let mut h = io::problem_fingerprint(graph, params);
    let mut buf = Vec::new();
    for spec in &specs {
        buf.clear();
        put_spec(&mut buf, spec);
        io::fingerprint_fold(&mut h, &buf);
    }
    Some(h)
}

/// Encodes `request` into a request-frame payload. Fails if any
/// proximal operator does not expose a [`ProxSpec`] value encoding
/// (closure-backed operators cannot travel over the wire).
pub fn encode_request(id: u64, request: &SolveRequest, use_cache: bool) -> Result<Vec<u8>, String> {
    let specs = specs_for(request.problem().proxes()).ok_or_else(|| {
        "request contains a proximal operator with no wire encoding (no ProxSpec)".to_string()
    })?;
    let mut out = Vec::new();
    put_header(&mut out, KIND_REQUEST);
    put_u64(&mut out, id);
    let mut flags = 0u8;
    if request.warm_start().is_some() {
        flags |= 1;
    }
    if use_cache {
        flags |= 2;
    }
    put_u8(&mut out, flags);
    put_u8(&mut out, request.priority().as_u8());
    let deadline_us = request
        .deadline()
        .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX - 1))
        .unwrap_or(u64::MAX);
    put_u64(&mut out, deadline_us);
    let stopping = request.stopping();
    put_u64(&mut out, stopping.max_iters as u64);
    put_u64(&mut out, stopping.check_every as u64);
    put_f64(&mut out, stopping.eps_abs);
    put_f64(&mut out, stopping.eps_rel);
    put_blob(&mut out, request.backend().to_string().as_bytes());

    let mut blob = Vec::new();
    io::encode_graph(request.problem().graph(), &mut blob);
    put_blob(&mut out, &blob);
    blob.clear();
    io::encode_params(request.problem().params(), &mut blob);
    put_blob(&mut out, &blob);

    put_u32(&mut out, specs.len() as u32);
    for spec in &specs {
        put_spec(&mut out, spec);
    }
    if let Some(ws) = request.warm_start() {
        blob.clear();
        io::encode_store(ws, &mut blob);
        put_blob(&mut out, &blob);
    }
    Ok(out)
}

/// Decodes and validates a request-frame payload.
pub fn decode_request(buf: &[u8]) -> Result<DecodedRequest, WireError> {
    let mut r = Reader::new(buf);
    read_header(&mut r, KIND_REQUEST)?;
    let id = r.u64()?;
    let flags = r.u8()?;
    if flags & !3 != 0 {
        return Err(WireError::Malformed(format!(
            "unknown flag bits {flags:#x}"
        )));
    }
    let priority = Priority::from_u8(r.u8()?)
        .ok_or_else(|| WireError::Malformed("unknown priority".to_string()))?;
    let deadline_us = r.u64()?;
    let max_iters = r.u64()?;
    if max_iters > MAX_WIRE_ITERS {
        return Err(WireError::Malformed(format!(
            "max_iters {max_iters} exceeds the wire cap {MAX_WIRE_ITERS}"
        )));
    }
    let check_every = r.u64()?;
    let stopping = StoppingCriteria {
        max_iters: max_iters as usize,
        // usize::MAX (no residual checks) must survive the u64 trip.
        check_every: usize::try_from(check_every).unwrap_or(usize::MAX),
        eps_abs: r.f64()?,
        eps_rel: r.f64()?,
    };
    let backend_str = std::str::from_utf8(r.blob()?)
        .map_err(|_| WireError::Malformed("backend spec is not UTF-8".to_string()))?;
    let backend = backend_str
        .parse()
        .map_err(|e| WireError::Malformed(format!("{e}")))?;

    let graph = io::decode_graph(r.blob()?)?;
    let params = io::decode_params(r.blob()?, &graph)?;
    let num_specs = r.u32()? as usize;
    if num_specs != graph.num_factors() {
        return Err(WireError::Malformed(format!(
            "{num_specs} prox specs for {} factors",
            graph.num_factors()
        )));
    }
    let mut proxes: Vec<Box<dyn ProxOp>> = Vec::with_capacity(num_specs);
    for a in graph.factors() {
        let spec = read_spec(&mut r)?;
        let span = graph.factor_degree(a) * graph.dims();
        if let Some(expect) = spec_span(&spec) {
            if expect != span {
                return Err(WireError::Malformed(format!(
                    "prox for factor {} spans {expect} components, factor has {span}",
                    a.idx()
                )));
            }
        }
        proxes.push(spec.build());
    }
    let warm_start = if flags & 1 != 0 {
        // decode_store validates the store's shape against the graph,
        // so the builder's shape assertions below cannot fire on
        // untrusted input.
        Some(io::decode_store(r.blob()?, &graph)?)
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after request",
            r.remaining()
        )));
    }

    let mut request = SolveRequest::new(AdmmProblem::with_params(graph, proxes, params))
        .with_stopping(stopping)
        .with_backend(backend)
        .with_priority(priority);
    if deadline_us != u64::MAX {
        request = request.with_deadline(Duration::from_micros(deadline_us));
    }
    if let Some(ws) = warm_start {
        request = request.with_warm_start(ws);
    }
    Ok(DecodedRequest {
        id,
        use_cache: flags & 2 != 0,
        request,
    })
}

/// Encodes a response-frame payload: the served outcome, or a
/// server-side error message.
pub fn encode_response(id: u64, result: &Result<ServedOutcome, String>) -> Vec<u8> {
    let mut out = Vec::new();
    put_header(&mut out, KIND_RESPONSE);
    put_u64(&mut out, id);
    match result {
        Err(message) => {
            put_u8(&mut out, 1);
            put_blob(&mut out, message.as_bytes());
        }
        Ok(outcome) => {
            put_u8(&mut out, 0);
            put_u8(&mut out, outcome.lane.as_u8());
            put_u8(&mut out, outcome.warm_started as u8);
            put_u8(&mut out, stop_reason_u8(outcome.stop_reason));
            put_u64(&mut out, outcome.iterations as u64);
            let elapsed_us = u64::try_from(outcome.elapsed.as_micros()).unwrap_or(u64::MAX);
            put_u64(&mut out, elapsed_us);
            match &outcome.final_residuals {
                Some(r) => {
                    put_u8(&mut out, 1);
                    put_f64(&mut out, r.primal);
                    put_f64(&mut out, r.dual);
                    put_f64(&mut out, r.x_norm);
                    put_f64(&mut out, r.z_norm);
                    put_f64(&mut out, r.u_norm);
                }
                None => put_u8(&mut out, 0),
            }
            let mut blob = Vec::new();
            io::encode_store(&outcome.store, &mut blob);
            put_blob(&mut out, &blob);
        }
    }
    out
}

/// Peeks the request id off a response-frame payload without decoding
/// the body — the client needs the id to look up which graph the
/// response's store belongs to.
pub fn response_id(buf: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(buf);
    read_header(&mut r, KIND_RESPONSE)?;
    r.u64()
}

/// Decodes a response-frame payload; `graph` is the graph of the
/// request this response answers (needed to validate the store blob —
/// error responses carry no store and decode without one).
pub fn decode_response(
    buf: &[u8],
    graph: Option<&FactorGraph>,
) -> Result<(u64, Result<ServedOutcome, String>), WireError> {
    let mut r = Reader::new(buf);
    read_header(&mut r, KIND_RESPONSE)?;
    let id = r.u64()?;
    match r.u8()? {
        1 => {
            let message = std::str::from_utf8(r.blob()?)
                .map_err(|_| WireError::Malformed("error message is not UTF-8".to_string()))?
                .to_string();
            Ok((id, Err(message)))
        }
        0 => {
            let lane = Lane::from_u8(r.u8()?)
                .ok_or_else(|| WireError::Malformed("unknown lane".to_string()))?;
            let warm_started = r.u8()? != 0;
            let stop_reason = stop_reason_from_u8(r.u8()?)?;
            let iterations = r.u64()? as usize;
            let elapsed = Duration::from_micros(r.u64()?);
            let final_residuals = match r.u8()? {
                0 => None,
                1 => Some(Residuals {
                    primal: r.f64()?,
                    dual: r.f64()?,
                    x_norm: r.f64()?,
                    z_norm: r.f64()?,
                    u_norm: r.f64()?,
                }),
                v => {
                    return Err(WireError::Malformed(format!(
                        "bad residual presence byte {v}"
                    )))
                }
            };
            let graph = graph.ok_or_else(|| {
                WireError::Malformed("response carries a store but no graph was supplied".into())
            })?;
            let store = io::decode_store(r.blob()?, graph)?;
            if r.remaining() != 0 {
                return Err(WireError::Malformed(format!(
                    "{} trailing bytes after response",
                    r.remaining()
                )));
            }
            Ok((
                id,
                Ok(ServedOutcome {
                    store,
                    iterations,
                    stop_reason,
                    final_residuals,
                    elapsed,
                    lane,
                    warm_started,
                }),
            ))
        }
        v => Err(WireError::Malformed(format!("bad status byte {v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paradmm_graph::GraphBuilder;
    use paradmm_prox::QuadraticProx;

    fn request() -> SolveRequest {
        let mut b = GraphBuilder::new(2);
        let v = b.add_var();
        b.add_factor(&[v]);
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![
            Box::new(QuadraticProx::isotropic(2, 2.0, &[1.0, -1.0])),
            Box::new(paradmm_prox::BoxProx::new(-4.0, 4.0)),
        ];
        SolveRequest::new(AdmmProblem::new(b.build(), proxes, 1.5, 0.9))
            .with_stopping(StoppingCriteria {
                max_iters: 321,
                eps_abs: 1e-7,
                eps_rel: 1e-5,
                check_every: 7,
            })
            .with_backend("worksteal:3".parse().unwrap())
            .with_priority(Priority::High)
            .with_deadline(Duration::from_millis(250))
    }

    #[test]
    fn request_roundtrip_preserves_everything() {
        let req = request();
        let bytes = encode_request(42, &req, true).unwrap();
        let decoded = decode_request(&bytes).unwrap();
        assert_eq!(decoded.id, 42);
        assert!(decoded.use_cache);
        let got = decoded.request;
        assert_eq!(got.stopping(), req.stopping());
        assert_eq!(got.backend(), req.backend());
        assert_eq!(got.priority(), Priority::High);
        assert_eq!(got.deadline(), Some(Duration::from_millis(250)));
        assert_eq!(got.problem().graph().num_edges(), 2);
        // The decoded request must solve bit-identically to the original.
        let a = req.solve();
        let b = got.solve();
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.store.z, b.store.z);
        assert_eq!(a.store.u, b.store.u);
    }

    #[test]
    fn fixed_iteration_check_every_survives_the_wire() {
        let req = SolveRequest::new(request().into_parts().problem)
            .with_stopping(StoppingCriteria::fixed_iterations(17));
        let bytes = encode_request(1, &req, false).unwrap();
        let decoded = decode_request(&bytes).unwrap();
        assert_eq!(decoded.request.stopping().check_every, usize::MAX);
        assert_eq!(decoded.request.stopping().max_iters, 17);
    }

    #[test]
    fn closure_prox_has_no_wire_encoding() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> =
            vec![Box::new(paradmm_prox::NumericProx::new(|s| s[0] * s[0]))];
        let req = SolveRequest::new(AdmmProblem::new(b.build(), proxes, 1.0, 1.0));
        assert!(encode_request(0, &req, false).is_err());
    }

    #[test]
    fn warm_start_roundtrips() {
        let req = request();
        let mut ws = VarStore::zeros(req.problem().graph());
        ws.n[0] = 0.25;
        ws.z[1] = -3.5;
        let req = req.with_warm_start(ws);
        let bytes = encode_request(9, &req, false).unwrap();
        let decoded = decode_request(&bytes).unwrap();
        let ws = decoded.request.warm_start().expect("warm start survives");
        assert_eq!(ws.n[0], 0.25);
        assert_eq!(ws.z[1], -3.5);
    }

    #[test]
    fn response_roundtrip_ok_and_error() {
        let req = request();
        let graph = req.problem().graph().clone();
        let outcome = {
            let o = req.solve();
            ServedOutcome {
                store: o.store,
                iterations: o.iterations,
                stop_reason: o.stop_reason,
                final_residuals: o.final_residuals,
                elapsed: Duration::from_micros(1234),
                lane: Lane::Batch,
                warm_started: true,
            }
        };
        let bytes = encode_response(7, &Ok(outcome.clone()));
        assert_eq!(response_id(&bytes).unwrap(), 7);
        let (id, got) = decode_response(&bytes, Some(&graph)).unwrap();
        let got = got.unwrap();
        assert_eq!(id, 7);
        assert_eq!(got.iterations, outcome.iterations);
        assert_eq!(got.stop_reason, outcome.stop_reason);
        assert_eq!(got.lane, Lane::Batch);
        assert!(got.warm_started);
        assert_eq!(got.elapsed, Duration::from_micros(1234));
        assert_eq!(got.store.z, outcome.store.z);
        assert_eq!(
            got.final_residuals.unwrap().primal,
            outcome.final_residuals.unwrap().primal
        );

        let bytes = encode_response(8, &Err("no such backend".to_string()));
        let (id, got) = decode_response(&bytes, None).unwrap();
        assert_eq!(id, 8);
        assert_eq!(got.unwrap_err(), "no such backend");
    }

    #[test]
    fn malformed_frames_are_rejected_not_panicked() {
        let req = request();
        let good = encode_request(1, &req, false).unwrap();

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            decode_request(&bad).err().unwrap(),
            WireError::BadMagic
        ));

        // Wrong version.
        let mut bad = good.clone();
        bad[4] = 0xee;
        assert!(matches!(
            decode_request(&bad).err().unwrap(),
            WireError::BadVersion(_)
        ));

        // Response frame fed to the request decoder.
        let mut bad = good.clone();
        bad[8] = KIND_RESPONSE;
        assert!(matches!(
            decode_request(&bad).err().unwrap(),
            WireError::BadKind(KIND_RESPONSE)
        ));

        // Every truncation point must error, not panic.
        for cut in 0..good.len() {
            assert!(decode_request(&good[..cut]).is_err(), "cut at {cut}");
        }

        // Trailing garbage is rejected.
        let mut bad = good.clone();
        bad.push(0);
        assert!(matches!(
            decode_request(&bad).err().unwrap(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn absurd_iteration_budget_rejected() {
        let req = request().with_stopping(StoppingCriteria {
            max_iters: (MAX_WIRE_ITERS + 1) as usize,
            ..StoppingCriteria::default()
        });
        let bytes = encode_request(1, &req, false).unwrap();
        assert!(matches!(
            decode_request(&bytes).err().unwrap(),
            WireError::Malformed(_)
        ));
    }

    #[test]
    fn prox_span_mismatch_rejected() {
        // A Linear spec over the wrong span for its factor.
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![Box::new(paradmm_prox::LinearProx::new(vec![1.0]))];
        let req = SolveRequest::new(AdmmProblem::new(b.build(), proxes, 1.0, 1.0));
        let good = encode_request(1, &req, false).unwrap();
        assert!(decode_request(&good).is_ok());

        // The builder API will not construct a mismatched problem, so
        // patch the encoded bytes: the spec section sits at the end of
        // the frame (no warm start) as `count u32 | tag u8 | len u32 |
        // f64`. Grow the gradient to 2 components for a 1-span factor.
        let mut bytes = good.clone();
        let tag_pos = bytes.len() - 1 - 4 - 8;
        assert_eq!(bytes[tag_pos], 1, "expected Linear tag");
        bytes[tag_pos + 1..tag_pos + 5].copy_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&2.0f64.to_le_bytes());
        match decode_request(&bytes).err().unwrap() {
            WireError::Malformed(m) => assert!(m.contains("spans"), "{m}"),
            other => panic!("expected span mismatch, got {other:?}"),
        }
    }
}
