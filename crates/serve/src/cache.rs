//! Warm-start cache: completed solutions keyed by problem fingerprint.
//!
//! A serving workload re-submits near-identical problems constantly
//! (receding-horizon MPC re-solves the same controller every tick). The
//! cache keys final [`VarStore`]s by
//! [`crate::protocol::request_fingerprint`] — a hash of topology, ρ/α
//! *and* each factor's prox-operator encoding — so an exact
//! re-submission starts from the previous solution instead of zeros,
//! while a same-shaped problem with a different objective gets its own
//! key (requests whose operators have no stable encoding are never
//! cache-keyed at all). Warm-starting changes the *trajectory*, not
//! the contract: a served warm-started run stays bit-identical to a
//! solo run given the same warm start.

use std::collections::HashMap;

use paradmm_graph::VarStore;

/// Bounded LRU map from problem fingerprint to final solver state.
#[derive(Debug, Default)]
pub struct WarmStartCache {
    capacity: usize,
    map: HashMap<u64, VarStore>,
    /// Keys from least- to most-recently used.
    order: Vec<u64>,
    hits: u64,
    misses: u64,
}

impl WarmStartCache {
    /// A cache holding at most `capacity` entries (`0` disables caching:
    /// every lookup misses and inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        WarmStartCache {
            capacity,
            ..WarmStartCache::default()
        }
    }

    /// Number of cached solutions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn touch(&mut self, key: u64) {
        self.order.retain(|&k| k != key);
        self.order.push(key);
    }

    /// The cached solution for `key`, bumping its recency.
    pub fn get(&mut self, key: u64) -> Option<VarStore> {
        match self.map.get(&key).cloned() {
            Some(store) => {
                self.hits += 1;
                self.touch(key);
                Some(store)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Caches `store` under `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: u64, store: VarStore) {
        if self.capacity == 0 {
            return;
        }
        if !self.map.contains_key(&key) && self.map.len() >= self.capacity {
            if let Some(&oldest) = self.order.first() {
                self.order.remove(0);
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, store);
        self.touch(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(tag: f64) -> VarStore {
        let mut s = VarStore::zeros_shape(1, 1, 1);
        s.x[0] = tag;
        s
    }

    #[test]
    fn get_returns_inserted_store() {
        let mut c = WarmStartCache::new(4);
        assert!(c.get(7).is_none());
        c.insert(7, store(1.5));
        let hit = c.get(7).expect("cached");
        assert_eq!(hit.x[0], 1.5);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = WarmStartCache::new(2);
        c.insert(1, store(1.0));
        c.insert(2, store(2.0));
        let _ = c.get(1); // 2 is now the LRU entry
        c.insert(3, store(3.0));
        assert_eq!(c.len(), 2);
        assert!(c.get(2).is_none(), "LRU entry evicted");
        assert!(c.get(1).is_some());
        assert!(c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = WarmStartCache::new(0);
        c.insert(1, store(1.0));
        assert!(c.is_empty());
        assert!(c.get(1).is_none());
    }

    #[test]
    fn reinsert_overwrites_without_eviction() {
        let mut c = WarmStartCache::new(2);
        c.insert(1, store(1.0));
        c.insert(2, store(2.0));
        c.insert(1, store(9.0));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(1).unwrap().x[0], 9.0);
        assert!(c.get(2).is_some());
    }
}
