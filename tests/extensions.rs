//! Integration tests for the future-work extensions: asynchronous
//! scheduling, multi-device partitioning, serialization round-trips
//! through the full pipeline, and the Sudoku combinatorial domain.

use paradmm::core::{
    AsyncBackend, Scheduler, Solver, SolverOptions, StoppingCriteria, SweepExecutor, UpdateTimings,
};
use paradmm::gpusim::{MultiDevice, WorkloadProfile};
use paradmm::graph::{io, Partition, VarStore};
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::packing::{PackingConfig, PackingProblem};
use paradmm::sudoku::{Grid, SudokuConfig, SudokuProblem};

#[test]
fn async_solves_mpc() {
    // Asynchronous activation must reach the same optimum as synchronous
    // sweeps on a convex problem (different trajectory, same fixed point).
    let config = MpcConfig::new(6);
    let (mpc, admm_sync) = MpcProblem::build(config.clone(), paper_plant());
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: config.rho,
        alpha: config.alpha,
        stopping: StoppingCriteria::fixed_iterations(15_000),
    };
    let mut solver = Solver::from_problem(admm_sync, options);
    solver.run(15_000);
    let sync_traj = mpc.extract(solver.store());

    let (mpc2, admm_async) = MpcProblem::build(config, paper_plant());
    let mut store = VarStore::zeros(admm_async.graph());
    let mut t = UpdateTimings::new();
    AsyncBackend::new(2).run_block(&admm_async, &mut store, 15_000, &mut t);
    let async_traj = mpc2.extract(&store);

    for t in 0..=6 {
        for i in 0..4 {
            let (a, s) = (async_traj.states[t][i], sync_traj.states[t][i]);
            assert!(
                (a - s).abs() < 5e-3,
                "async vs sync state mismatch at t={t} i={i}: {a} vs {s}"
            );
        }
    }
}

#[test]
fn graph_io_roundtrip_through_solver() {
    // Serialize a packing graph + params, reload, and verify the reloaded
    // problem produces identical solver trajectories.
    let (_, admm) = PackingProblem::build(PackingConfig::new(5));
    let mut topo = Vec::new();
    io::encode_graph(admm.graph(), &mut topo);
    let mut params_buf = Vec::new();
    io::encode_params(admm.params(), &mut params_buf);

    let graph2 = io::decode_graph(&topo).unwrap();
    let params2 = io::decode_params(&params_buf, &graph2).unwrap();
    assert_eq!(graph2.num_edges(), admm.graph().num_edges());
    assert_eq!(params2.rho, admm.params().rho);

    // Run the original problem, checkpoint mid-solve, restore, continue,
    // and compare against an uninterrupted run.
    let mk = || {
        let (_, admm) = PackingProblem::build(PackingConfig::new(5));
        Solver::from_problem(
            admm,
            SolverOptions {
                scheduler: Scheduler::Serial,
                rho: 2.0,
                alpha: 1.0,
                stopping: StoppingCriteria::fixed_iterations(100),
            },
        )
    };
    let mut uninterrupted = mk();
    uninterrupted.run(100);

    let mut first_half = mk();
    first_half.run(50);
    let ckpt = first_half.save_checkpoint();
    let mut second_half = mk();
    second_half.load_checkpoint(&ckpt).unwrap();
    second_half.run(50);
    assert_eq!(second_half.store().z, uninterrupted.store().z);
}

#[test]
fn partition_multi_gpu_consistency() {
    // The multi-device model must price a 1-GPU run identically to the
    // plain engine's breakdown, and a 2-GPU MPC run must actually win.
    let (_, admm) = MpcProblem::build(MpcConfig::new(20_000), paper_plant());
    let profile = WorkloadProfile::from_problem(&admm);
    let part1 = Partition::contiguous(admm.graph(), 1);
    let one = MultiDevice::k40s(1).iteration_time(admm.graph(), &profile, &part1);
    assert_eq!(one.halo_vars, 0);

    let part2 = Partition::grow(admm.graph(), 2);
    let speedup = MultiDevice::k40s(2).speedup(admm.graph(), &profile, &part2);
    assert!(
        speedup > 1.3,
        "2 GPUs should beat 1 on a chain, got {speedup:.2}"
    );
}

#[test]
fn sudoku_rayon_matches_serial_iterates() {
    // The Sudoku graph exercises PermutationProx under both schedulers.
    let givens = Grid::parse(2, "1000003004000002");
    let config = SudokuConfig::default();
    let run_with = |scheduler: Scheduler| {
        let (_, admm) = SudokuProblem::build(&givens, &config);
        let options = SolverOptions {
            scheduler,
            rho: config.rho,
            alpha: 1.0,
            stopping: StoppingCriteria::fixed_iterations(50),
        };
        let mut solver = Solver::from_problem(admm, options);
        solver.run(50);
        solver.store().z.clone()
    };
    let a = run_with(Scheduler::Serial);
    let b = run_with(Scheduler::Rayon { threads: Some(2) });
    assert_eq!(a, b);
}

#[test]
fn balanced_grouping_preserves_z_semantics() {
    // Grouped scheduling is a *device-model* optimization; the actual
    // z-update math is unchanged. Verify GraphStats grouping covers
    // everything on a real problem's graph.
    let (_, admm) = PackingProblem::build(PackingConfig::new(8));
    let groups = paradmm::graph::GraphStats::balanced_var_groups(admm.graph(), 4);
    let mut seen: Vec<u32> = groups.into_iter().flatten().collect();
    seen.sort_unstable();
    let expect: Vec<u32> = (0..admm.graph().num_vars() as u32).collect();
    assert_eq!(seen, expect);
}
