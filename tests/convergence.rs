//! Convergence-behavior integration tests: residual decrease, adaptive ρ,
//! three-weight propagation, and warm starting.

use paradmm::core::{
    AdmmProblem, ResidualBalancing, Scheduler, SerialBackend, Solver, SolverOptions, StopReason,
    StoppingCriteria, SweepExecutor, TwaWeights, UpdateTimings, WeightClass,
};
use paradmm::graph::{EdgeId, EdgeParams, GraphBuilder, VarId, VarStore};
use paradmm::prox::{ProxOp, QuadraticProx};

fn consensus_chain(k: usize, targets: &[f64]) -> (AdmmProblem, Vec<VarId>) {
    // k variables in a chain, each with a quadratic anchor.
    let mut b = GraphBuilder::new(1);
    let vars = b.add_vars(k);
    let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
    for i in 0..k {
        b.add_factor(&[vars[i]]);
        proxes.push(Box::new(QuadraticProx::isotropic(1, 1.0, &[targets[i]])));
    }
    for i in 0..k - 1 {
        b.add_factor(&[vars[i], vars[i + 1]]);
        proxes.push(Box::new(paradmm::prox::ConsensusEqualityProx));
    }
    (AdmmProblem::new(b.build(), proxes, 1.0, 1.0), vars)
}

#[test]
fn residuals_shrink_monotonically_ish() {
    let (problem, _) = consensus_chain(5, &[1.0, 2.0, 3.0, 4.0, 5.0]);
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: 1.0,
        alpha: 1.0,
        stopping: StoppingCriteria {
            max_iters: 10_000,
            eps_abs: 1e-10,
            eps_rel: 1e-8,
            check_every: 1,
        },
    };
    let mut solver = Solver::from_problem(problem, options);
    let mut history = Vec::new();
    for _ in 0..30 {
        solver.run(10);
        let r = solver.residuals();
        history.push(r.primal + r.dual);
    }
    // Combined residual after 300 iterations ≪ after 10.
    assert!(
        history.last().unwrap() < &(history[0] * 1e-2 + 1e-12),
        "residuals should decay: {history:?}"
    );
}

#[test]
fn chain_consensus_converges_to_global_mean() {
    // Consensus chain forces all variables equal; anchors pull to targets;
    // optimum of Σ(s − tᵢ)² under s shared = mean(t).
    let targets = [2.0, 4.0, 6.0, 8.0];
    let (problem, vars) = consensus_chain(4, &targets);
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: 1.0,
        alpha: 1.0,
        stopping: StoppingCriteria {
            max_iters: 50_000,
            eps_abs: 1e-11,
            eps_rel: 1e-10,
            check_every: 50,
        },
    };
    let mut solver = Solver::from_problem(problem, options);
    let report = solver.run_default();
    assert_eq!(report.stop_reason, StopReason::Converged);
    for &v in &vars {
        let z = solver.store().z_var(v)[0];
        assert!((z - 5.0).abs() < 1e-3, "z = {z}");
    }
}

#[test]
fn adaptive_rho_accelerates_badly_scaled_problem() {
    // A deliberately mis-scaled ρ: residual balancing must fix it and
    // converge in fewer iterations than the fixed-ρ run.
    let build = || {
        let (p, _) = consensus_chain(6, &[10.0, -10.0, 10.0, -10.0, 10.0, -10.0]);
        p
    };
    let iterations_with = |adapt: bool| -> usize {
        let problem = build();
        let mut store = VarStore::zeros(problem.graph());
        let mut problem = problem;
        // Mis-scale: tiny rho.
        let rho0 = EdgeParams::uniform(problem.graph(), 0.01, 1.0);
        *problem.params_mut() = rho0;
        let balancer = ResidualBalancing::default();
        let mut acc = 1.0;
        let mut t = UpdateTimings::new();
        for outer in 0..200 {
            SerialBackend.run_block(&problem, &mut store, 10, &mut t);
            let r = paradmm::core::Residuals::compute(problem.graph(), problem.params(), &store);
            let n_comp = problem.graph().num_edges();
            if r.converged(n_comp, 1e-8, 1e-6) {
                return (outer + 1) * 10;
            }
            if adapt {
                balancer.adapt(&mut problem, &mut store, &r, &mut acc);
            }
        }
        2000
    };
    let fixed = iterations_with(false);
    let adaptive = iterations_with(true);
    assert!(
        adaptive < fixed,
        "adaptive ρ should converge faster: adaptive {adaptive} vs fixed {fixed}"
    );
}

#[test]
fn twa_infinite_weight_pins_variable() {
    // Factor 0 is *certain* (a near-hard constraint s = 7, strong enough
    // to pin its output even against an infinite-weight prox input);
    // factor 1 is a soft anchor at 1. TWA semantics: broadcasting the
    // certain factor's message with infinite weight makes the consensus
    // follow it; with standard weights the soft anchor still tugs z away.
    let build = |certain: bool| {
        let mut b = GraphBuilder::new(1);
        let v = b.add_var();
        b.add_factor(&[v]);
        b.add_factor(&[v]);
        let proxes: Vec<Box<dyn ProxOp>> = vec![
            Box::new(QuadraticProx::isotropic(1, 1e15, &[7.0])),
            Box::new(QuadraticProx::isotropic(1, 10.0, &[1.0])),
        ];
        let graph = b.build();
        let mut weights = TwaWeights::standard(&graph);
        if certain {
            weights.set(EdgeId(0), WeightClass::Infinite);
        }
        let mut problem = AdmmProblem::new(graph, proxes, 1.0, 1.0);
        weights.apply(problem.params_mut(), 1.0);
        let _ = (v, VarId(0));
        problem
    };
    // Both weightings converge to ~7 in the limit (the anchor is near-
    // hard); TWA's value is the *transient* — the certain message takes
    // over the consensus immediately instead of being averaged in.
    let run = |problem: &AdmmProblem, iters: usize| {
        let mut store = VarStore::zeros(problem.graph());
        let mut t = UpdateTimings::new();
        SerialBackend.run_block(problem, &mut store, iters, &mut t);
        store.z_var(VarId(0))[0]
    };
    let z_twa = run(&build(true), 5);
    let z_std = run(&build(false), 5);
    let (err_twa, err_std) = ((z_twa - 7.0).abs(), (z_std - 7.0).abs());
    assert!(
        err_twa < 0.01,
        "TWA must pin z to 7 within a few iterations, z = {z_twa}"
    );
    assert!(
        err_std > 10.0 * err_twa,
        "standard weights should still be compromising after 5 iterations: twa {z_twa} vs std {z_std}"
    );
}

#[test]
fn warm_start_converges_faster_than_cold() {
    let (problem, _) = consensus_chain(8, &[1.0; 8]);
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: 1.0,
        alpha: 1.0,
        stopping: StoppingCriteria {
            max_iters: 100_000,
            eps_abs: 1e-10,
            eps_rel: 1e-9,
            check_every: 5,
        },
    };
    let mut solver = Solver::from_problem(problem, options);
    let cold = solver.run_default();
    assert_eq!(cold.stop_reason, StopReason::Converged);
    // Re-run from the converged state: should stop almost immediately.
    let warm = solver.run_default();
    assert!(
        warm.iterations <= cold.iterations / 2 + 5,
        "warm start {} vs cold {}",
        warm.iterations,
        cold.iterations
    );
}

#[test]
fn fixed_iteration_budget_is_respected_exactly() {
    let (problem, _) = consensus_chain(3, &[1.0, 2.0, 3.0]);
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: 1.0,
        alpha: 1.0,
        stopping: StoppingCriteria::fixed_iterations(123),
    };
    let mut solver = Solver::from_problem(problem, options);
    let report = solver.run(123);
    assert_eq!(report.iterations, 123);
    assert_eq!(report.timings.iterations, 123);
}
