//! Golden end-to-end Sudoku solve.
//!
//! Pins the full non-convex message-passing pipeline on a fixed 9×9
//! puzzle: graph construction, the permutation/simplex/clue proximal
//! operators, the solver loop, and the execution backends. The restart
//! RNG is seeded and every synchronous backend is bit-identical, so the
//! solved grid *and* the iteration count are deterministic — a numeric
//! regression anywhere in the stack shows up as a count drift long
//! before it breaks convergence outright.

use paradmm::core::Scheduler;
use paradmm::sudoku::{Grid, SudokuConfig, SudokuProblem};

/// The easy 9×9 instance (many givens) used across the test suite.
fn easy9() -> Grid {
    Grid::parse(
        3,
        "530070000
         600195000
         098000060
         800060003
         400803001
         700020006
         060000280
         000419005
         000080079",
    )
}

fn golden_config() -> SudokuConfig {
    SudokuConfig {
        iters_per_attempt: 3000,
        max_attempts: 4,
        ..SudokuConfig::default()
    }
}

/// The solve checks for a completed grid every 100 iterations, and with
/// seed 11 this instance clicks into place within the very first check
/// window of the first attempt. Anything above the window means the
/// numerics drifted enough to need extra checks (or a restart), which is
/// exactly the regression this test exists to catch.
const GOLDEN_ITERS: std::ops::RangeInclusive<usize> = 100..=500;

#[test]
fn serial_solves_fixed_9x9_within_golden_window() {
    let givens = easy9();
    let (grid, iters) =
        SudokuProblem::solve_with_scheduler(&givens, &golden_config(), 11, Scheduler::Serial)
            .expect("fixed 9×9 must solve");
    assert!(grid.is_solved());
    assert!(grid.is_completion_of(&givens));
    assert!(
        GOLDEN_ITERS.contains(&iters),
        "serial iteration count {iters} left the golden window {GOLDEN_ITERS:?}"
    );
}

#[test]
fn worksteal_solves_fixed_9x9_identically_to_serial() {
    let givens = easy9();
    let config = golden_config();
    let (serial_grid, serial_iters) =
        SudokuProblem::solve_with_scheduler(&givens, &config, 11, Scheduler::Serial)
            .expect("fixed 9×9 must solve on serial");
    let (ws_grid, ws_iters) = SudokuProblem::solve_with_scheduler(
        &givens,
        &config,
        11,
        Scheduler::WorkSteal { threads: 3 },
    )
    .expect("fixed 9×9 must solve on worksteal");

    assert!(ws_grid.is_solved());
    assert!(ws_grid.is_completion_of(&givens));
    assert!(
        GOLDEN_ITERS.contains(&ws_iters),
        "worksteal iteration count {ws_iters} left the golden window {GOLDEN_ITERS:?}"
    );
    // Bit-identical backends ⇒ identical restart trajectory: same grid,
    // same total iteration count.
    assert_eq!(serial_grid, ws_grid);
    assert_eq!(serial_iters, ws_iters);
}
