//! Bounded-staleness equivalence suite.
//!
//! [`StaleBoundedBackend`] runs the sharded halo protocol without global
//! barriers: shards publish per-iteration progress watermarks and halo
//! reads may consume neighbor state up to `k` iterations stale. The
//! contract this suite pins:
//!
//! * **`k = 0` is bit-identical** to [`ShardedBackend`] (and therefore
//!   to the serial five-sweep reference) on every problem — with the
//!   waits tightened to "neighbor finished this iteration", the
//!   barrier-free protocol replays the exact synchronous fold, on all
//!   three paper generators plus the degree-imbalanced hub graph, for
//!   BFS-grown and contiguous partitions alike.
//! * **`k ≥ 1` converges** to the same fixed point on convex instances
//!   (the iterates differ — freshness was traded for zero wait — but
//!   the optimum may not move).
//! * The **observed skew never exceeds `k`**, and the watermark words
//!   shards publish are strictly monotone in `(iteration, phase)` — the
//!   two invariants the wait loops rest on (property-tested below).

use paradmm::core::{
    watermark, AdmmProblem, AsyncBackend, SerialBackend, ShardedBackend, StaleBoundedBackend,
    SweepExecutor, SweepPlan, UpdateTimings,
};
use paradmm::graph::{Partition, VarStore};
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::packing::{PackingConfig, PackingProblem};
use paradmm::svm::{gaussian_mixture, SvmConfig, SvmProblem};
use proptest::prelude::*;
use rand::SeedableRng;

/// Runs `iters` iterations from a deterministic non-zero state.
fn run_from_seeded_state(
    problem: &AdmmProblem,
    backend: &mut dyn SweepExecutor,
    iters: usize,
) -> VarStore {
    let mut store = VarStore::zeros(problem.graph());
    for (i, v) in store.n.iter_mut().enumerate() {
        *v = (i as f64 * 0.37).sin();
    }
    for (i, v) in store.z.iter_mut().enumerate() {
        *v = (i as f64 * 0.11).cos();
    }
    store.snapshot_z();
    let mut t = UpdateTimings::new();
    backend.run_block(problem, &mut store, iters, &mut t);
    assert_eq!(t.iterations, iters, "backend must account its iterations");
    store
}

/// Asserts k=0 stale execution is bit-identical to the sharded backend
/// (which is itself pinned to serial by `backend_equivalence`) across
/// part counts and partition styles, under fused and unfused plans.
fn assert_k0_bit_identical(problem: &mut AdmmProblem, iters: usize, label: &str) {
    problem.set_plan(SweepPlan::unfused(problem));
    let serial = run_from_seeded_state(problem, &mut SerialBackend, iters);
    problem.clear_plan();

    for fused in [true, false] {
        if fused {
            problem.clear_plan();
        } else {
            problem.set_plan(SweepPlan::unfused(problem));
        }
        let plan_label = if fused { "fused" } else { "unfused" };
        for parts in [1usize, 2, 4] {
            let sharded = run_from_seeded_state(problem, &mut ShardedBackend::new(parts), iters);

            let mut stale = StaleBoundedBackend::new(parts, 0);
            let got = run_from_seeded_state(problem, &mut stale, iters);
            let which = format!("{label}[{plan_label}] stale({parts}, k=0)");
            assert_eq!(serial.z, got.z, "{which}: z diverged from serial");
            assert_eq!(sharded.z, got.z, "{which}: z diverged from sharded");
            assert_eq!(sharded.x, got.x, "{which}: x diverged");
            assert_eq!(sharded.u, got.u, "{which}: u diverged");
            assert_eq!(sharded.n, got.n, "{which}: n diverged");
            assert_eq!(sharded.z_prev, got.z_prev, "{which}: z_prev diverged");
            assert_eq!(stale.max_observed_skew(), 0, "{which}: k=0 must not skew");

            // Contiguous partitions interleave a halo variable's edges
            // across shards — the hard case for the ordered reduce.
            let contiguous = Partition::contiguous(problem.graph(), parts);
            let mut stale_cont = StaleBoundedBackend::with_partition(contiguous.clone(), 0);
            let got_cont = run_from_seeded_state(problem, &mut stale_cont, iters);
            let sharded_cont = run_from_seeded_state(
                problem,
                &mut ShardedBackend::with_partition(contiguous),
                iters,
            );
            let which = format!("{label}[{plan_label}] stale({parts}, contiguous, k=0)");
            assert_eq!(sharded_cont.z, got_cont.z, "{which}: z diverged");
            assert_eq!(sharded_cont.u, got_cont.u, "{which}: u diverged");
            assert_eq!(sharded_cont.n, got_cont.n, "{which}: n diverged");
        }
    }
    problem.clear_plan();
}

#[test]
fn packing_k0_bit_identical() {
    let (_, mut problem) = PackingProblem::build(PackingConfig::new(10));
    assert_k0_bit_identical(&mut problem, 60, "packing");
}

#[test]
fn mpc_k0_bit_identical() {
    let (_, mut problem) = MpcProblem::build(MpcConfig::new(25), paper_plant());
    assert_k0_bit_identical(&mut problem, 60, "mpc");
}

#[test]
fn svm_k0_bit_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let data = gaussian_mixture(60, 2, 4.0, &mut rng);
    let (_, mut problem) = SvmProblem::build(&data, SvmConfig::default());
    assert_k0_bit_identical(&mut problem, 60, "svm");
}

#[test]
fn imbalanced_hub_k0_bit_identical() {
    // Hub variables sit at the front of the variable order, so static
    // partitions straggle — exactly the shape the barrier-free protocol
    // exists for; at k=0 it must still replay the synchronous fold.
    let mut problem = paradmm_bench::imbalanced_problem(7, 23);
    assert_k0_bit_identical(&mut problem, 60, "imbalanced");
}

#[test]
fn stale_iterates_converge_to_serial_optimum() {
    // A strongly convex MPC tracking QP: for k ≥ 1 the iterates differ
    // from the synchronous schedule, but the fixed point may not.
    let run_from_zeros = |problem: &AdmmProblem, backend: &mut dyn SweepExecutor, iters| {
        let mut store = VarStore::zeros(problem.graph());
        let mut t = UpdateTimings::new();
        backend.run_block(problem, &mut store, iters, &mut t);
        store
    };
    let config = MpcConfig::new(8);
    let (mpc, problem) = MpcProblem::build(config.clone(), paper_plant());
    let sync_store = run_from_zeros(&problem, &mut SerialBackend, 20_000);
    let sync_traj = mpc.extract(&sync_store);

    for k in [1usize, 4] {
        let (mpc_k, problem_k) = MpcProblem::build(config.clone(), paper_plant());
        let mut backend = StaleBoundedBackend::new(3, k);
        let stale_store = run_from_zeros(&problem_k, &mut backend, 20_000);
        let stale_traj = mpc_k.extract(&stale_store);
        assert!(
            backend.max_observed_skew() <= k,
            "k={k}: observed skew {} above the bound",
            backend.max_observed_skew()
        );
        for t in 0..=8 {
            for i in 0..4 {
                let (a, s) = (stale_traj.states[t][i], sync_traj.states[t][i]);
                assert!(
                    (a - s).abs() < 5e-3,
                    "k={k} vs serial state mismatch at t={t} i={i}: {a} vs {s}"
                );
            }
        }
    }
}

#[test]
fn async_backend_routes_to_bounded_staleness() {
    // The seed activation engine is retired from the execution path:
    // `AsyncBackend` is now the bounded-staleness executor at its
    // default (small) staleness bound.
    let backend = AsyncBackend::new(3);
    assert_eq!(backend.name(), "async");
    assert_eq!(backend.threads(), 3);
    assert_eq!(backend.staleness(), AsyncBackend::DEFAULT_STALENESS);
    assert_eq!(AsyncBackend::DEFAULT_STALENESS, 1);
}

#[test]
fn observed_skew_stays_within_bound_on_hub_graph() {
    let problem = paradmm_bench::imbalanced_problem(5, 17);
    for k in [0usize, 1, 2, 4] {
        let mut backend = StaleBoundedBackend::new(4, k);
        let _ = run_from_seeded_state(&problem, &mut backend, 200);
        assert!(
            backend.max_observed_skew() <= k,
            "k={k}: skew {} exceeded the staleness bound",
            backend.max_observed_skew()
        );
    }
}

proptest! {
    /// Watermark words are strictly monotone in (iteration, phase):
    /// progress can be compared with a plain integer compare, which is
    /// exactly what the wait loops do.
    #[test]
    fn watermark_words_are_monotone_in_progress(
        i1 in 1u64..=u32::MAX as u64,
        p1 in watermark::PHASE_STAGED..=watermark::PHASE_DONE,
        i2 in 1u64..=u32::MAX as u64,
        p2 in watermark::PHASE_STAGED..=watermark::PHASE_DONE,
    ) {
        let w1 = watermark::encode(i1, p1);
        let w2 = watermark::encode(i2, p2);
        prop_assert_eq!(w1.cmp(&w2), (i1, p1).cmp(&(i2, p2)));
    }

    /// The phase extractors answer "how many iterations of this phase
    /// have fully completed": staged counts the current iteration once
    /// STAGED is reached, reduced/done only from their own phase on.
    #[test]
    fn watermark_extractors_count_completed_phases(
        iter in 1u64..=u32::MAX as u64,
        phase in watermark::PHASE_STAGED..=watermark::PHASE_DONE,
    ) {
        let w = watermark::encode(iter, phase);
        prop_assert_eq!(watermark::staged_iter(w), iter);
        let expect_reduced = if phase >= watermark::PHASE_REDUCED { iter } else { iter - 1 };
        prop_assert_eq!(watermark::reduced_iter(w), expect_reduced);
        let expect_done = if phase >= watermark::PHASE_DONE { iter } else { iter - 1 };
        prop_assert_eq!(watermark::done_iter(w), expect_done);
        // A reader bounded by `k` therefore never sees state older than
        // `iter - k` once the writer has published `w`.
        prop_assert!(watermark::done_iter(w) + 1 >= watermark::staged_iter(w));
    }

    /// Random chain consensus problems: k=0 equivalence and the skew
    /// bound hold for arbitrary sizes, part counts, and bounds — not
    /// just the hand-picked fixtures above.
    #[test]
    fn random_chains_hold_k0_identity_and_skew_bound(
        n in 2usize..10,
        parts in 1usize..5,
        k in 0usize..4,
        iters in 1usize..40,
    ) {
        use paradmm::graph::GraphBuilder;
        use paradmm::prox::{ConsensusEqualityProx, ProxOp, QuadraticProx};
        let mut b = GraphBuilder::new(1);
        let vars = b.add_vars(n);
        let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            b.add_factor(&[v]);
            proxes.push(Box::new(QuadraticProx::isotropic(1, 1.0, &[i as f64])));
        }
        for i in 0..n - 1 {
            b.add_factor(&[vars[i], vars[i + 1]]);
            proxes.push(Box::new(ConsensusEqualityProx));
        }
        let problem = AdmmProblem::new(b.build(), proxes, 1.0, 1.0);

        let mut backend = StaleBoundedBackend::new(parts, k);
        let got = run_from_seeded_state(&problem, &mut backend, iters);
        prop_assert!(backend.max_observed_skew() <= k);
        if k == 0 {
            let reference =
                run_from_seeded_state(&problem, &mut ShardedBackend::new(parts), iters);
            prop_assert_eq!(&reference.z, &got.z);
            prop_assert_eq!(&reference.u, &got.u);
            prop_assert_eq!(&reference.n, &got.n);
        }
    }
}
