//! Backend-equivalence suite.
//!
//! The synchronous backends (serial, rayon, barrier, work-stealing,
//! sharded, fleet, and auto — which locks in one of the former six)
//! implement
//! the same Jacobi-style Algorithm 2 schedule, so their iterates must be
//! **bit-identical** on every problem — the z-average per variable is
//! deterministic regardless of how the sweeps are scheduled, the
//! work-stealing backend's fused u+n sweep is edge-local, so fusion
//! cannot change results, and the sharded backend's halo exchange folds
//! staged messages in ascending global edge order, replaying the serial
//! z-update's exact floating-point association. This suite pins that contract on all
//! three paper problem generators (packing, MPC, SVM) and on a
//! degree-imbalanced hub graph whose static range splits straggle.
//! [`AsyncBackend`] deliberately breaks the schedule (workers see
//! bounded-stale `z`), so for it the contract is convergence to the same
//! fixed point on a convex instance, not bitwise equality.

use paradmm::core::{
    barriers_per_iteration, AdmmProblem, AsyncBackend, AutoBackend, BarrierBackend, BatchSolver,
    FleetBackend, FleetSolver, RayonBackend, Scheduler, SerialBackend, ShardedBackend, Solver,
    SolverOptions, StoppingCriteria, SweepExecutor, SweepPlan, UpdateTimings, WorkStealingBackend,
};
use paradmm::graph::{Partition, VarStore};
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::packing::{PackingConfig, PackingProblem};
use paradmm::svm::{gaussian_mixture, SvmConfig, SvmProblem};
use rand::SeedableRng;

/// Runs `iters` iterations of `problem` from a deterministic non-zero
/// state on `backend`, returning the full final state.
fn run_from_seeded_state(
    problem: &AdmmProblem,
    backend: &mut dyn SweepExecutor,
    iters: usize,
) -> VarStore {
    let mut store = VarStore::zeros(problem.graph());
    // Deterministic non-trivial start so every sweep has real work.
    for (i, v) in store.n.iter_mut().enumerate() {
        *v = (i as f64 * 0.37).sin();
    }
    for (i, v) in store.z.iter_mut().enumerate() {
        *v = (i as f64 * 0.11).cos();
    }
    store.snapshot_z();
    let mut t = UpdateTimings::new();
    backend.run_block(problem, &mut store, iters, &mut t);
    assert_eq!(t.iterations, iters, "backend must account its iterations");
    store
}

fn assert_bit_identical_across_sync_backends(problem: &mut AdmmProblem, iters: usize, label: &str) {
    // The reference is the seed five-sweep schedule: the explicit
    // unfused plan on the serial backend.
    problem.set_plan(SweepPlan::unfused(problem));
    let serial = run_from_seeded_state(problem, &mut SerialBackend, iters);
    problem.clear_plan();

    // Every backend must reproduce it under BOTH the default fused
    // three-pass plan and the explicit unfused five-pass plan.
    for fused in [true, false] {
        if fused {
            problem.clear_plan(); // default = SweepPlan::fused
            assert!(
                barriers_per_iteration(problem) <= 3,
                "{label}: default plan must cost ≤ 3 barriers/iteration"
            );
        } else {
            problem.set_plan(SweepPlan::unfused(problem));
        }
        let plan_label = if fused { "fused" } else { "unfused" };
        let assert_matches = |got: &VarStore, which: &str| {
            assert_eq!(serial.z, got.z, "{label}[{plan_label}]: {which} z diverged");
            assert_eq!(serial.x, got.x, "{label}[{plan_label}]: {which} x diverged");
            assert_eq!(serial.u, got.u, "{label}[{plan_label}]: {which} u diverged");
            assert_eq!(serial.n, got.n, "{label}[{plan_label}]: {which} n diverged");
        };

        let serial_again = run_from_seeded_state(problem, &mut SerialBackend, iters);
        assert_matches(&serial_again, "serial");

        for threads in [1usize, 2, 3] {
            let rayon =
                run_from_seeded_state(problem, &mut RayonBackend::new(Some(threads)), iters);
            assert_matches(&rayon, &format!("rayon({threads})"));

            let barrier = run_from_seeded_state(problem, &mut BarrierBackend::new(threads), iters);
            assert_matches(&barrier, &format!("barrier({threads})"));

            let ws = run_from_seeded_state(problem, &mut WorkStealingBackend::new(threads), iters);
            assert_matches(&ws, &format!("worksteal({threads})"));

            // Tiny chunks force real chunk contention on every pass.
            let ws_tiny = run_from_seeded_state(
                problem,
                &mut WorkStealingBackend::with_chunk(threads, 2),
                iters,
            );
            assert_matches(&ws_tiny, &format!("worksteal({threads}, chunk=2)"));

            // The barrier-free fleet scheduler (single-instance
            // degenerate form): watermarked chunk claims instead of
            // barriers, with and without forced chunk contention.
            let fleet = run_from_seeded_state(problem, &mut FleetBackend::new(threads), iters);
            assert_matches(&fleet, &format!("fleet({threads})"));

            let fleet_tiny =
                run_from_seeded_state(problem, &mut FleetBackend::with_chunk(threads, 2), iters);
            assert_matches(&fleet_tiny, &format!("fleet({threads}, chunk=2)"));
        }
        // Sharded execution: partition-local stores with a real halo
        // exchange per iteration must replay the serial fold exactly, for
        // both the BFS-grown partition and a contiguous one (whose halo
        // variables interleave their edges across shards — the hard case
        // for an ordered reduce).
        for parts in [1usize, 2, 4] {
            let sharded = run_from_seeded_state(problem, &mut ShardedBackend::new(parts), iters);
            assert_matches(&sharded, &format!("sharded({parts})"));

            let contiguous = Partition::contiguous(problem.graph(), parts);
            let sharded_cont = run_from_seeded_state(
                problem,
                &mut ShardedBackend::with_partition(contiguous),
                iters,
            );
            assert_matches(&sharded_cont, &format!("sharded({parts}, contiguous)"));
        }
        // AutoBackend probes all six sync candidates on a clone and locks
        // in one of them — whichever wins, iterates must match serial
        // bitwise.
        let mut auto = AutoBackend::new(2);
        let auto_store = run_from_seeded_state(problem, &mut auto, iters);
        let selected = auto.selected().expect("auto probe must run");
        assert_matches(&auto_store, &format!("auto→{selected}"));
    }
    problem.clear_plan();
}

#[test]
fn packing_generator_bit_identical() {
    let (_, mut problem) = PackingProblem::build(PackingConfig::new(10));
    assert_bit_identical_across_sync_backends(&mut problem, 60, "packing");
}

#[test]
fn mpc_generator_bit_identical() {
    let (_, mut problem) = MpcProblem::build(MpcConfig::new(25), paper_plant());
    assert_bit_identical_across_sync_backends(&mut problem, 60, "mpc");
}

#[test]
fn svm_generator_bit_identical() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let data = gaussian_mixture(60, 2, 4.0, &mut rng);
    let (_, mut problem) = SvmProblem::build(&data, SvmConfig::default());
    assert_bit_identical_across_sync_backends(&mut problem, 60, "svm");
}

#[test]
fn imbalanced_degree_graph_bit_identical() {
    // The hub-heavy generator the ablation benches: all hub variables sit
    // at the front of the variable order, so a contiguous static
    // z-partition hands one worker every hub's heavy weighted average.
    // Chunk-claiming backends must still be bit-identical — scheduling
    // may never leak into iterates. 7 hubs of degree 23: indivisible
    // heavy z-tasks, plus leaf counts that don't divide evenly into
    // chunks or thread counts.
    let mut problem = paradmm_bench::imbalanced_problem(7, 23);
    assert_bit_identical_across_sync_backends(&mut problem, 60, "imbalanced");
}

#[test]
fn async_backend_converges_on_seeded_convex_instance() {
    // A strongly convex instance (MPC tracking QP) built from a fixed
    // seed: the asynchronous backend must land on the same optimum the
    // serial backend finds. Both start from the all-zeros state — the
    // consistent state the async activation loop's incremental z-update
    // requires (see `AsyncBackend` docs).
    let run_from_zeros = |problem: &AdmmProblem, backend: &mut dyn SweepExecutor, iters| {
        let mut store = VarStore::zeros(problem.graph());
        let mut t = UpdateTimings::new();
        backend.run_block(problem, &mut store, iters, &mut t);
        store
    };
    let config = MpcConfig::new(8);
    let (mpc, problem) = MpcProblem::build(config.clone(), paper_plant());
    let sync_store = run_from_zeros(&problem, &mut SerialBackend, 20_000);
    let sync_traj = mpc.extract(&sync_store);

    let (mpc2, problem2) = MpcProblem::build(config, paper_plant());
    let async_store = run_from_zeros(&problem2, &mut AsyncBackend::new(3), 20_000);
    let async_traj = mpc2.extract(&async_store);

    for t in 0..=8 {
        for i in 0..4 {
            let (a, s) = (async_traj.states[t][i], sync_traj.states[t][i]);
            assert!(
                (a - s).abs() < 5e-3,
                "async vs serial state mismatch at t={t} i={i}: {a} vs {s}"
            );
        }
    }
}

#[test]
fn batched_solves_bit_identical_to_solo_serial_on_every_sync_backend() {
    // Mixed-size MPC instances (horizons cycle, so edge counts differ
    // per instance) packed into one block-diagonal store: under every
    // synchronous backend, each instance's final state, iteration
    // count, and stop reason must equal a solo serial solve with the
    // same stopping criteria — freezing converged instances early may
    // not perturb the stragglers.
    let stopping = StoppingCriteria {
        max_iters: 1200,
        eps_abs: 1e-6,
        eps_rel: 1e-4,
        check_every: 20,
    };
    let instances = || paradmm_bench::many_mpc(5, 2);
    let solo: Vec<(VarStore, usize, paradmm::core::StopReason)> = instances()
        .into_iter()
        .map(|p| {
            let options = SolverOptions {
                stopping,
                ..SolverOptions::default()
            };
            let mut solver = Solver::from_problem(p, options);
            let report = solver.run(stopping.max_iters);
            (
                solver.store().clone(),
                report.iterations,
                report.stop_reason,
            )
        })
        .collect();
    // At least one instance must freeze before another stops, or the
    // test exercises nothing.
    let iters: Vec<usize> = solo.iter().map(|(_, it, _)| *it).collect();
    assert!(
        iters.iter().any(|&i| i != iters[0]),
        "mixed horizons should converge at different checks: {iters:?}"
    );

    for scheduler in [
        Scheduler::Serial,
        Scheduler::Rayon { threads: Some(2) },
        Scheduler::Barrier { threads: 3 },
        Scheduler::WorkSteal { threads: 2 },
        Scheduler::Sharded { parts: 2 },
        Scheduler::Fleet { threads: 2 },
        Scheduler::Auto { threads: 2 },
    ] {
        let options = SolverOptions {
            scheduler,
            stopping,
            ..SolverOptions::default()
        };
        let mut batch = BatchSolver::new(instances(), options);
        let report = batch.run(stopping.max_iters);
        for (i, (store, solo_iters, solo_reason)) in solo.iter().enumerate() {
            let r = &report.instances[i];
            assert_eq!(
                r.iterations, *solo_iters,
                "{scheduler:?} instance {i} iters"
            );
            assert_eq!(r.stop_reason, *solo_reason, "{scheduler:?} instance {i}");
            let got = batch.store(i);
            assert_eq!(got.z, store.z, "{scheduler:?} instance {i} z");
            assert_eq!(got.x, store.x, "{scheduler:?} instance {i} x");
            assert_eq!(got.u, store.u, "{scheduler:?} instance {i} u");
            assert_eq!(got.n, store.n, "{scheduler:?} instance {i} n");
            assert_eq!(got.m, store.m, "{scheduler:?} instance {i} m");
        }
    }

    // Tiny work-stealing chunks force contended claims over the fused
    // sweeps — bit-identity must survive real stealing too.
    let options = SolverOptions {
        stopping,
        ..SolverOptions::default()
    };
    let mut batch = BatchSolver::with_backend(
        instances(),
        options,
        Box::new(WorkStealingBackend::with_chunk(3, 2)),
    );
    let report = batch.run(stopping.max_iters);
    for (i, (store, solo_iters, _)) in solo.iter().enumerate() {
        assert_eq!(report.instances[i].iterations, *solo_iters);
        assert_eq!(batch.store(i).z, store.z, "worksteal-chunk2 instance {i}");
        assert_eq!(batch.store(i).u, store.u, "worksteal-chunk2 instance {i}");
    }
}

#[test]
fn fleet_solves_bit_identical_to_solo_serial_across_shapes() {
    // The work-assisting fleet scheduler on random mixed-size fleets:
    // per-instance final states, iteration counts, AND stop reasons
    // must equal solo serial solves for every thread count and chunk
    // size — assist migrations between instances may never leak into
    // iterates. Long-tail fleets (mixed_fleet_mpc) make the big
    // instance attract assists while small ones retire early.
    let stopping = StoppingCriteria {
        max_iters: 1200,
        eps_abs: 1e-6,
        eps_rel: 1e-4,
        check_every: 20,
    };
    let instances = || paradmm_bench::mixed_fleet_mpc(6);
    let solo: Vec<(VarStore, usize, paradmm::core::StopReason)> = instances()
        .into_iter()
        .map(|p| {
            let options = SolverOptions {
                stopping,
                ..SolverOptions::default()
            };
            let mut solver = Solver::from_problem(p, options);
            let report = solver.run(stopping.max_iters);
            (
                solver.store().clone(),
                report.iterations,
                report.stop_reason,
            )
        })
        .collect();
    let iters: Vec<usize> = solo.iter().map(|(_, it, _)| *it).collect();
    assert!(
        iters.iter().any(|&i| i != iters[0]),
        "mixed horizons should converge at different checks: {iters:?}"
    );

    for threads in [1usize, 2, 3] {
        for chunk in [None, Some(2), Some(7)] {
            let options = SolverOptions {
                scheduler: Scheduler::Fleet { threads },
                stopping,
                ..SolverOptions::default()
            };
            let mut fleet = FleetSolver::new(instances(), options);
            if let Some(c) = chunk {
                fleet.set_chunk(c);
            }
            let report = fleet.run(stopping.max_iters);
            for (i, (store, solo_iters, solo_reason)) in solo.iter().enumerate() {
                let label = format!("fleet({threads}, chunk={chunk:?}) instance {i}");
                let r = &report.instances[i];
                assert_eq!(r.iterations, *solo_iters, "{label} iters");
                assert_eq!(r.stop_reason, *solo_reason, "{label} stop reason");
                let got = fleet.store(i);
                assert_eq!(got.z, store.z, "{label} z");
                assert_eq!(got.x, store.x, "{label} x");
                assert_eq!(got.u, store.u, "{label} u");
                assert_eq!(got.n, store.n, "{label} n");
                assert_eq!(got.m, store.m, "{label} m");
            }
        }
    }
}

#[test]
fn fleet_serves_mixed_dims_fleets_batching_cannot_fuse() {
    // Packing (dims=2) and SVM (dims=3) in one fleet: BatchSolver
    // rejects the shape outright, while the fleet solves every instance
    // bit-identically to its solo serial solve — the no-fusion
    // advantage the fleet scheduler exists for.
    let stopping = StoppingCriteria {
        max_iters: 800,
        eps_abs: 1e-6,
        eps_rel: 1e-4,
        check_every: 20,
    };
    let instances = || paradmm_bench::mixed_fleet_pack_svm(5);
    let dims: Vec<usize> = instances().iter().map(|p| p.graph().dims()).collect();
    assert!(
        dims.iter().any(|&d| d != dims[0]),
        "scenario must mix dims: {dims:?}"
    );

    let options = SolverOptions {
        scheduler: Scheduler::Fleet { threads: 2 },
        stopping,
        ..SolverOptions::default()
    };
    let mut fleet = FleetSolver::new(instances(), options);
    let report = fleet.run(stopping.max_iters);
    for (i, p) in instances().into_iter().enumerate() {
        let solo_options = SolverOptions {
            stopping,
            ..SolverOptions::default()
        };
        let mut solver = Solver::from_problem(p, solo_options);
        let solo_report = solver.run(stopping.max_iters);
        assert_eq!(report.instances[i].iterations, solo_report.iterations);
        assert_eq!(report.instances[i].stop_reason, solo_report.stop_reason);
        assert_eq!(fleet.store(i).z, solver.store().z, "instance {i} z");
        assert_eq!(fleet.store(i).x, solver.store().x, "instance {i} x");
        assert_eq!(fleet.store(i).u, solver.store().u, "instance {i} u");
    }
    assert!(
        fleet.diagnostics().total_chunks() > 0,
        "telemetry must record the fleet's claims"
    );
}

#[test]
fn gpusim_backend_bit_identical_to_serial_on_packing() {
    use paradmm::gpusim::{GpuSimBackend, SimtDevice};
    let (_, problem) = PackingProblem::build(PackingConfig::new(8));
    let serial = run_from_seeded_state(&problem, &mut SerialBackend, 40);
    let mut gpusim = GpuSimBackend::new(&problem, SimtDevice::tesla_k40());
    let gpu = run_from_seeded_state(&problem, &mut gpusim, 40);
    assert_eq!(serial.z, gpu.z);
    assert_eq!(serial.x, gpu.x);
    assert!(gpusim.simulated_seconds() > 0.0);
}
