//! SweepPlan-equivalence suite.
//!
//! The `SweepPlan` IR's whole contract is that the schedule is a pure
//! throughput knob: **any** legal plan — fused or unfused passes, any
//! chunk size, uniform or arbitrarily weighted static splits — executed
//! by any synchronous backend must produce iterates bit-identical to the
//! seed five-sweep serial schedule. This suite property-tests that
//! contract on the paper's problem families (MPC, packing) and on a
//! degree-imbalanced hub graph, across the serial, barrier,
//! work-stealing, rayon, and sharded executors.

use proptest::prelude::*;

use paradmm::core::{
    AdmmProblem, BarrierBackend, Pass, PassKind, Planner, RayonBackend, SerialBackend,
    ShardedBackend, SweepExecutor, SweepPlan, UpdateTimings, WorkStealingBackend,
};
use paradmm::graph::VarStore;
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::packing::{PackingConfig, PackingProblem};

const ITERS: usize = 25;

/// Runs `iters` iterations from a deterministic non-zero state.
fn run(problem: &AdmmProblem, backend: &mut dyn SweepExecutor, iters: usize) -> VarStore {
    let mut store = VarStore::zeros(problem.graph());
    for (i, v) in store.n.iter_mut().enumerate() {
        *v = (i as f64 * 0.37).sin();
    }
    for (i, v) in store.z.iter_mut().enumerate() {
        *v = (i as f64 * 0.11).cos();
    }
    store.snapshot_z();
    let mut t = UpdateTimings::new();
    backend.run_block(problem, &mut store, iters, &mut t);
    store
}

/// The three problem families the suite sweeps.
fn problems() -> Vec<(&'static str, AdmmProblem)> {
    let (_, packing) = PackingProblem::build(PackingConfig::new(7));
    let (_, mpc) = MpcProblem::build(MpcConfig::new(10), paper_plant());
    let hub = paradmm_bench::imbalanced_problem(4, 9);
    vec![("packing", packing), ("mpc", mpc), ("hub", hub)]
}

/// One random-but-legal plan: fusion shape from two booleans, chunk
/// sizes cycled from `chunks`, and (when `weighted`) a pseudo-random
/// positive cost profile derived from `seed` so static splits land on
/// arbitrary boundaries.
fn build_plan(
    problem: &AdmmProblem,
    xm: bool,
    un: bool,
    chunks: &[usize],
    weighted: bool,
    seed: u64,
) -> SweepPlan {
    let g = problem.graph();
    let mut next = {
        let mut i = 0usize;
        let chunks = chunks.to_vec();
        move || {
            let c = chunks[i % chunks.len()];
            i += 1;
            c
        }
    };
    let costs = |items: usize, salt: u64| -> Vec<f64> {
        (0..items)
            .map(|j| {
                let h = seed
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(salt)
                    .wrapping_add(j as u64)
                    .wrapping_mul(0x2545f4914f6cdd1d);
                1e-8 + (h % 997) as f64 * 1e-9
            })
            .collect()
    };
    let mk = |kind: PassKind, items: usize, chunk: usize, salt: u64| {
        if weighted {
            Pass::weighted(kind, chunk, &costs(items, salt))
        } else {
            Pass::uniform(kind, items, chunk)
        }
    };
    let (nf, nv, ne) = (g.num_factors(), g.num_vars(), g.num_edges());
    let mut passes = Vec::new();
    if xm {
        passes.push(mk(PassKind::Xm, nf, next(), 1));
    } else {
        passes.push(mk(PassKind::X, nf, next(), 2));
        passes.push(mk(PassKind::M, ne, next(), 3));
    }
    passes.push(mk(PassKind::Z, nv, next(), 4));
    if un {
        passes.push(mk(PassKind::Un, ne, next(), 5));
    } else {
        passes.push(mk(PassKind::U, ne, next(), 6));
        passes.push(mk(PassKind::N, ne, next(), 7));
    }
    SweepPlan::from_passes(passes).expect("generated shape is legal by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any legal plan on any backend equals the unfused serial schedule,
    /// bit for bit, on all three problem families.
    #[test]
    fn any_legal_plan_is_bit_identical_to_unfused_serial(
        xm_bit in 0u32..2,
        un_bit in 0u32..2,
        weighted_bit in 0u32..2,
        chunks in proptest::collection::vec(1usize..=97, 1..=5),
        seed in 0u64..u64::MAX,
    ) {
        let (xm, un, weighted) = (xm_bit == 1, un_bit == 1, weighted_bit == 1);
        for (label, mut problem) in problems() {
            // Reference: the seed five-sweep schedule on the serial
            // backend.
            let unfused = SweepPlan::unfused(&problem);
            problem.set_plan(unfused);
            let reference = run(&problem, &mut SerialBackend, ITERS);

            let plan = build_plan(&problem, xm, un, &chunks, weighted, seed);
            prop_assert!(plan.matches(problem.graph()));
            problem.set_plan(plan);

            let mut backends: Vec<(&str, Box<dyn SweepExecutor>)> = vec![
                ("serial", Box::new(SerialBackend)),
                ("rayon", Box::new(RayonBackend::new(Some(2)))),
                ("barrier", Box::new(BarrierBackend::new(3))),
                ("worksteal", Box::new(WorkStealingBackend::new(2))),
                ("sharded", Box::new(ShardedBackend::new(2))),
            ];
            for (name, backend) in backends.iter_mut() {
                let got = run(&problem, backend.as_mut(), ITERS);
                prop_assert_eq!(&got.x, &reference.x, "{}/{} x", label, name);
                prop_assert_eq!(&got.m, &reference.m, "{}/{} m", label, name);
                prop_assert_eq!(&got.z, &reference.z, "{}/{} z", label, name);
                prop_assert_eq!(&got.u, &reference.u, "{}/{} u", label, name);
                prop_assert_eq!(&got.n, &reference.n, "{}/{} n", label, name);
                prop_assert_eq!(
                    &got.z_prev, &reference.z_prev,
                    "{}/{} z_prev", label, name
                );
            }
        }
    }
}

/// The measuring planner's output is just another legal plan: its
/// weighted splits and measured chunks must not perturb iterates.
#[test]
fn measured_planner_output_is_bit_identical() {
    for (label, mut problem) in problems() {
        problem.set_plan(SweepPlan::unfused(&problem));
        let reference = run(&problem, &mut SerialBackend, ITERS);

        let plan = Planner::new().plan(&problem);
        assert_eq!(plan.barriers_per_iteration(), 3, "{label}");
        problem.set_plan(plan);
        for threads in [1usize, 3] {
            let got = run(&problem, &mut BarrierBackend::new(threads), ITERS);
            assert_eq!(got.z, reference.z, "{label} barrier({threads})");
            assert_eq!(got.u, reference.u, "{label} barrier({threads})");
        }
        let got = run(&problem, &mut SerialBackend, ITERS);
        assert_eq!(got.n, reference.n, "{label} serial");
    }
}

/// Odd/even block boundaries: the parity-swapped z buffers must
/// normalize at every block edge so residual checks (which read z and
/// z_prev between blocks) see exactly the copying schedule's values.
#[test]
fn odd_block_lengths_keep_z_buffers_normalized() {
    let (_, problem) = PackingProblem::build(PackingConfig::new(6));
    let mut unfused_problem = {
        let (_, p) = PackingProblem::build(PackingConfig::new(6));
        p
    };
    unfused_problem.set_plan(SweepPlan::unfused(&unfused_problem));

    let mut fused_stores = (VarStore::zeros(problem.graph()), UpdateTimings::new());
    let mut ref_stores = (VarStore::zeros(problem.graph()), UpdateTimings::new());
    let mut barrier = BarrierBackend::new(3);
    let mut worksteal = WorkStealingBackend::with_chunk(2, 1);
    for block in [1usize, 3, 2, 7, 1] {
        SerialBackend.run_block(
            &unfused_problem,
            &mut ref_stores.0,
            block,
            &mut ref_stores.1,
        );
        barrier.run_block(&problem, &mut fused_stores.0, block, &mut fused_stores.1);
        assert_eq!(ref_stores.0.z, fused_stores.0.z, "barrier after {block}");
        assert_eq!(
            ref_stores.0.z_prev, fused_stores.0.z_prev,
            "barrier z_prev after {block}"
        );
    }
    let mut ws_store = VarStore::zeros(problem.graph());
    let mut t = UpdateTimings::new();
    let mut ref2 = VarStore::zeros(problem.graph());
    let mut t2 = UpdateTimings::new();
    for block in [1usize, 5, 2] {
        worksteal.run_block(&problem, &mut ws_store, block, &mut t);
        SerialBackend.run_block(&unfused_problem, &mut ref2, block, &mut t2);
        assert_eq!(ref2.z, ws_store.z, "worksteal after {block}");
        assert_eq!(ref2.z_prev, ws_store.z_prev, "worksteal z_prev {block}");
    }
}
