//! Property-based tests on the core invariants, with randomly generated
//! topologies, parameters, and states.

use proptest::prelude::*;

use paradmm::core::{
    AdmmProblem, FleetSolver, Residuals, Scheduler, SerialBackend, Solver, SolverOptions,
    StoppingCriteria, SweepExecutor, UpdateTimings,
};
use paradmm::graph::{
    EdgeParams, FactorGraph, GraphBuilder, GraphStats, Partition, PartitionStats, VarId, VarStore,
};
use paradmm::prox::{ConsensusEqualityProx, ProxCtx, ProxOp, QuadraticProx, ZeroProx};

/// Strategy: a random factor graph with exactly `dims` components, up to
/// `max_vars` variables and `max_factors` factors, each factor touching
/// a random distinct subset.
fn arb_graph_with_dims(
    dims: usize,
    max_vars: usize,
    max_factors: usize,
) -> impl Strategy<Value = FactorGraph> {
    (1usize..=max_vars).prop_flat_map(move |nv| {
        let factor = proptest::collection::btree_set(0..nv, 1..=nv.min(4));
        proptest::collection::vec(factor, 1..=max_factors).prop_map(move |factors| {
            let mut b = GraphBuilder::new(dims);
            let vars = b.add_vars(nv);
            for f in &factors {
                let vs: Vec<VarId> = f.iter().map(|&i| vars[i]).collect();
                b.add_factor(&vs);
            }
            b.build()
        })
    })
}

/// Strategy: a random factor graph with random `dims` ∈ 1..=3.
fn arb_graph(max_vars: usize, max_factors: usize) -> impl Strategy<Value = FactorGraph> {
    (1usize..=3).prop_flat_map(move |dims| arb_graph_with_dims(dims, max_vars, max_factors))
}

/// Strategy: 1–4 random graphs sharing one `dims` — a packable batch.
fn arb_batch_graphs(
    max_vars: usize,
    max_factors: usize,
) -> impl Strategy<Value = Vec<FactorGraph>> {
    (1usize..=3).prop_flat_map(move |dims| {
        proptest::collection::vec(arb_graph_with_dims(dims, max_vars, max_factors), 1..=4)
    })
}

/// Deterministically fills a store's six arrays with distinct values.
fn seeded_store(g: &FactorGraph, seed: u64, salt: f64) -> VarStore {
    let mut s = VarStore::zeros(g);
    let fill = |arr: &mut [f64], phase: f64| {
        for (j, v) in arr.iter_mut().enumerate() {
            *v = (seed as f64 * 0.013 + salt + phase + j as f64 * 0.71).sin();
        }
    };
    fill(&mut s.x, 0.1);
    fill(&mut s.m, 0.2);
    fill(&mut s.u, 0.3);
    fill(&mut s.n, 0.4);
    fill(&mut s.z, 0.5);
    fill(&mut s.z_prev, 0.6);
    s
}

fn zero_problem(graph: FactorGraph) -> AdmmProblem {
    let proxes: Vec<Box<dyn ProxOp>> = (0..graph.num_factors())
        .map(|_| Box::new(ZeroProx) as Box<dyn ProxOp>)
        .collect();
    AdmmProblem::new(graph, proxes, 1.0, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR invariants hold for every generated topology.
    #[test]
    fn graph_validates(g in arb_graph(8, 12)) {
        prop_assert!(g.validate().is_ok());
        // Degree sums agree in both directions.
        let fsum: usize = g.factors().map(|a| g.factor_degree(a)).sum();
        let vsum: usize = g.vars().map(|b| g.var_degree(b)).sum();
        prop_assert_eq!(fsum, g.num_edges());
        prop_assert_eq!(vsum, g.num_edges());
    }

    /// Degree statistics are consistent with brute-force recounts.
    #[test]
    fn stats_match_brute_force(g in arb_graph(8, 12)) {
        let s = GraphStats::compute(&g);
        let max_v = g.vars().map(|b| g.var_degree(b)).max().unwrap_or(0);
        prop_assert_eq!(s.max_var_degree, max_v);
        prop_assert!(s.var_imbalance >= 1.0 - 1e-12);
        let hist = GraphStats::var_degree_histogram(&g);
        prop_assert_eq!(hist.iter().sum::<usize>(), g.num_vars());
    }

    /// Balanced grouping is a partition of the variables.
    #[test]
    fn grouping_is_partition(g in arb_graph(10, 14), k in 1usize..6) {
        let groups = GraphStats::balanced_var_groups(&g, k);
        let mut seen: Vec<u32> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..g.num_vars() as u32).collect();
        prop_assert_eq!(seen, expect);
    }

    /// All three schedulers produce bit-identical iterates on random
    /// problems (quadratic factors with random targets).
    #[test]
    fn schedulers_agree(
        g in arb_graph(6, 8),
        seed in 0u64..1000,
        threads in 1usize..4,
    ) {
        let make = || {
            let proxes: Vec<Box<dyn ProxOp>> = g
                .factors()
                .map(|a| {
                    let len = g.factor_degree(a) * g.dims();
                    let t: Vec<f64> = (0..len)
                        .map(|i| ((seed as f64 + i as f64) * 0.61).sin())
                        .collect();
                    Box::new(QuadraticProx::isotropic(len, 1.0, &t)) as Box<dyn ProxOp>
                })
                .collect();
            AdmmProblem::new(g.clone(), proxes, 1.5, 0.9)
        };
        let run = |p: &AdmmProblem, s: Scheduler| {
            let mut store = VarStore::zeros(p.graph());
            let mut t = UpdateTimings::new();
            s.to_backend().run_block(p, &mut store, 7, &mut t);
            store.z
        };
        let pa = make();
        let pb = make();
        let pc = make();
        let pd = make();
        let z_serial = run(&pa, Scheduler::Serial);
        let z_rayon = run(&pb, Scheduler::Rayon { threads: Some(threads) });
        let z_barrier = run(&pc, Scheduler::Barrier { threads });
        let z_worksteal = run(&pd, Scheduler::WorkSteal { threads });
        let z_sharded = run(&make(), Scheduler::Sharded { parts: threads });
        prop_assert_eq!(&z_serial, &z_rayon);
        prop_assert_eq!(&z_serial, &z_barrier);
        prop_assert_eq!(&z_serial, &z_worksteal);
        prop_assert_eq!(&z_serial, &z_sharded);
    }

    /// The work-assisting fleet solver is bit-identical to solo serial
    /// solves on random fleets: random shapes, random `dims` *per
    /// instance* (no shared-dims constraint — nothing is fused), random
    /// worker counts, and random claim-chunk sizes. Iterates, iteration
    /// counts, and stop reasons must all match.
    #[test]
    fn fleet_solver_matches_solo_serial(
        graphs in proptest::collection::vec(arb_graph(5, 6), 1..=4),
        seed in 0u64..1000,
        threads in 1usize..4,
        chunk in 1usize..8,
    ) {
        let stopping = StoppingCriteria {
            max_iters: 60,
            eps_abs: 1e-6,
            eps_rel: 1e-4,
            check_every: 10,
        };
        let make_problem = |g: &FactorGraph| {
            let proxes: Vec<Box<dyn ProxOp>> = g
                .factors()
                .map(|a| {
                    let len = g.factor_degree(a) * g.dims();
                    let t: Vec<f64> = (0..len)
                        .map(|i| ((seed as f64 + i as f64) * 0.61).sin())
                        .collect();
                    Box::new(QuadraticProx::isotropic(len, 1.0, &t)) as Box<dyn ProxOp>
                })
                .collect();
            AdmmProblem::new(g.clone(), proxes, 1.5, 0.9)
        };
        let options = SolverOptions {
            scheduler: Scheduler::Fleet { threads },
            stopping,
            ..SolverOptions::default()
        };
        let mut fleet = FleetSolver::new(graphs.iter().map(&make_problem).collect(), options);
        fleet.set_chunk(chunk);
        let report = fleet.run(stopping.max_iters);
        for (i, g) in graphs.iter().enumerate() {
            let solo_options = SolverOptions {
                stopping,
                ..SolverOptions::default()
            };
            let mut solver = Solver::from_problem(make_problem(g), solo_options);
            let solo_report = solver.run(stopping.max_iters);
            prop_assert_eq!(report.instances[i].iterations, solo_report.iterations);
            prop_assert_eq!(report.instances[i].stop_reason, solo_report.stop_reason);
            prop_assert_eq!(&fleet.store(i).z, &solver.store().z);
            prop_assert_eq!(&fleet.store(i).x, &solver.store().x);
            prop_assert_eq!(&fleet.store(i).u, &solver.store().u);
            prop_assert_eq!(&fleet.store(i).n, &solver.store().n);
            prop_assert_eq!(&fleet.store(i).m, &solver.store().m);
        }
    }

    /// `BatchStore` pack/unpack round-trip: per-instance slices recover
    /// the original stores and parameters exactly, the offset maps are
    /// monotone with totals summing to the instance sums, the fused
    /// topology validates and stays block-diagonal, and the zero-cut
    /// instance partition really has an empty halo.
    #[test]
    fn batch_pack_unpack_roundtrip(
        graphs in arb_batch_graphs(6, 8),
        seed in 0u64..1000,
        parts in 1usize..6,
    ) {
        use paradmm::graph::{BatchInstance, BatchStore, EdgeId};
        let instances: Vec<(FactorGraph, EdgeParams, VarStore)> = graphs
            .into_iter()
            .enumerate()
            .map(|(i, g)| {
                let mut p = EdgeParams::uniform(&g, 1.0, 1.0);
                for (j, r) in p.rho.iter_mut().enumerate() {
                    *r = 0.5 + ((seed as usize + i * 31 + j) % 7) as f64 * 0.3;
                }
                for (j, a) in p.alpha.iter_mut().enumerate() {
                    *a = 0.4 + ((seed as usize + i * 17 + j) % 5) as f64 * 0.2;
                }
                let s = seeded_store(&g, seed, i as f64 * 2.3);
                (g, p, s)
            })
            .collect();
        let views: Vec<BatchInstance> = instances
            .iter()
            .map(|(g, p, s)| BatchInstance { graph: g, params: p, store: s })
            .collect();
        let batch = BatchStore::pack(&views).unwrap();
        let layout = batch.layout();

        // Offsets monotone and totals sum to the instance sums.
        prop_assert!(batch.graph().validate().is_ok());
        let mut prev = (0usize, 0usize, 0usize);
        for i in 0..instances.len() {
            let (vr, fr, er) = (layout.var_range(i), layout.factor_range(i), layout.edge_range(i));
            prop_assert_eq!(vr.start, prev.0);
            prop_assert_eq!(fr.start, prev.1);
            prop_assert_eq!(er.start, prev.2);
            prop_assert_eq!(vr.len(), instances[i].0.num_vars());
            prop_assert_eq!(fr.len(), instances[i].0.num_factors());
            prop_assert_eq!(er.len(), instances[i].0.num_edges());
            prev = (vr.end, fr.end, er.end);
        }
        prop_assert_eq!(prev.0, batch.graph().num_vars());
        prop_assert_eq!(prev.1, batch.graph().num_factors());
        prop_assert_eq!(prev.2, batch.graph().num_edges());

        // Per-instance slices recover the original stores and params.
        let unpacked = batch.unpack();
        for (i, (_, p, s)) in instances.iter().enumerate() {
            prop_assert_eq!(&unpacked[i].x, &s.x);
            prop_assert_eq!(&unpacked[i].m, &s.m);
            prop_assert_eq!(&unpacked[i].u, &s.u);
            prop_assert_eq!(&unpacked[i].n, &s.n);
            prop_assert_eq!(&unpacked[i].z, &s.z);
            prop_assert_eq!(&unpacked[i].z_prev, &s.z_prev);
            let er = layout.edge_range(i);
            prop_assert_eq!(&batch.params().rho[er.clone()], &p.rho[..]);
            prop_assert_eq!(&batch.params().alpha[er], &p.alpha[..]);
        }

        // Block-diagonal: every edge stays within its instance.
        for e in batch.graph().edges() {
            let (ie, local) = layout.instance_of_edge(e);
            prop_assert_eq!(layout.global_edge(ie, local), e);
            let (iv, _) = layout.instance_of_var(batch.graph().edge_var(e));
            prop_assert_eq!(ie, iv);
        }
        let _ = EdgeId(0);

        // Zero-cut partition: whole instances, empty halo, loads sum.
        let partition = layout.partition(parts);
        prop_assert!(partition.parts >= 1 && partition.parts <= instances.len());
        prop_assert!(partition.validate(batch.graph()).is_ok());
        prop_assert!(partition.halo_vars(batch.graph()).is_empty());
        prop_assert_eq!(
            partition.edge_loads(batch.graph()).iter().sum::<usize>(),
            batch.graph().num_edges()
        );
        for i in 0..instances.len() {
            let fr = layout.factor_range(i);
            if !fr.is_empty() {
                let first = partition.assignment[fr.start];
                prop_assert!(partition.assignment[fr].iter().all(|&x| x == first));
            }
        }
    }

    /// `Partition::grow` invariants on arbitrary (frequently
    /// disconnected) topologies: every factor assigned exactly once to
    /// an in-range part, per-part edge loads within 2× of the ideal
    /// budget (or of the largest indivisible factor), and `parts == 1`
    /// always yields the single part 0 — the guard on the
    /// `queue.clear()` frontier-discard path.
    #[test]
    fn partition_grow_invariants(g in arb_graph(10, 14), parts in 1usize..6) {
        let p = Partition::grow(&g, parts);
        prop_assert_eq!(p.parts, parts);
        prop_assert_eq!(p.assignment.len(), g.num_factors());
        prop_assert!(p.assignment.iter().all(|&a| (a as usize) < parts));
        prop_assert!(p.validate(&g).is_ok());

        let loads = p.edge_loads(&g);
        prop_assert_eq!(loads.iter().sum::<usize>(), g.num_edges());
        let budget = g.num_edges().div_ceil(parts).max(1);
        let max_degree = g.factors().map(|a| g.factor_degree(a)).max().unwrap_or(0);
        for (i, &load) in loads.iter().enumerate() {
            prop_assert!(
                load <= 2 * budget.max(max_degree),
                "part {} load {} exceeds 2x budget {} (max factor degree {})",
                i, load, budget, max_degree
            );
        }

        if parts == 1 {
            prop_assert!(p.assignment.iter().all(|&a| a == 0));
            prop_assert!(p.halo_vars(&g).is_empty());
        }

        // Quality metrics agree with the partition's own accounting.
        let stats = PartitionStats::compute(&g, &p);
        prop_assert_eq!(stats.halo_vars, p.halo_vars(&g).len());
        prop_assert_eq!(stats.edge_loads, loads);
        prop_assert!(stats.cut_edges >= stats.halo_vars);
    }

    /// The partition codec round-trips every grown partition against its
    /// graph and rejects truncation at every cut point.
    #[test]
    fn partition_codec_roundtrip_and_truncation(
        g in arb_graph(8, 10),
        parts in 1usize..5,
        frac in 0.0f64..1.0,
    ) {
        use paradmm::graph::io::{decode_partition, encode_partition};
        let p = Partition::grow(&g, parts);
        let mut buf = Vec::new();
        encode_partition(&p, &mut buf);
        let back = decode_partition(&buf, &g).unwrap();
        prop_assert_eq!(back.parts, p.parts);
        prop_assert_eq!(&back.assignment, &p.assignment);

        let cut = (buf.len() as f64 * frac) as usize;
        if cut < buf.len() {
            prop_assert!(decode_partition(&buf[..cut], &g).is_err());
        }
        prop_assert!(decode_partition(&buf[..buf.len() - 1], &g).is_err());
    }

    /// With f ≡ 0, the consensus z equals the ρ-weighted average of
    /// messages no matter the topology (conservation property of the
    /// z-update), and residuals are finite.
    #[test]
    fn zero_prox_fixed_point_and_finite_residuals(
        g in arb_graph(6, 8),
        init in -5.0f64..5.0,
    ) {
        let p = zero_problem(g);
        let mut store = VarStore::zeros(p.graph());
        store.fill(init);
        // A consensus state is a fixed point only with zero duals.
        store.u.fill(0.0);
        let mut t = UpdateTimings::new();
        SerialBackend.run_block(&p, &mut store, 5, &mut t);
        // f = 0 and uniform init is a fixed point: z stays at init.
        for &z in &store.z {
            prop_assert!((z - init).abs() < 1e-9);
        }
        let r = Residuals::compute(p.graph(), p.params(), &store);
        prop_assert!(r.primal.is_finite() && r.dual.is_finite());
        prop_assert!(r.primal < 1e-9);
    }

    /// The consensus prox output always has equal blocks, equal to the
    /// ρ-weighted mean.
    #[test]
    fn consensus_prox_property(
        vals in proptest::collection::vec(-10.0f64..10.0, 2..6),
        rhos in proptest::collection::vec(0.1f64..10.0, 2..6),
    ) {
        let k = vals.len().min(rhos.len());
        let n: Vec<f64> = vals[..k].to_vec();
        let rho: Vec<f64> = rhos[..k].to_vec();
        let mut x = vec![0.0; k];
        let mut ctx = ProxCtx::new(&n, &rho, &mut x, 1);
        ConsensusEqualityProx.prox(&mut ctx);
        let expect: f64 = n.iter().zip(&rho).map(|(a, b)| a * b).sum::<f64>()
            / rho.iter().sum::<f64>();
        for &xi in x.iter() {
            prop_assert!((xi - expect).abs() < 1e-9);
        }
    }

    /// EdgeParams validation accepts everything `uniform` produces and
    /// scaling preserves validity.
    #[test]
    fn edge_params_valid(g in arb_graph(6, 8), rho in 0.01f64..100.0, s in 0.1f64..10.0) {
        let mut p = EdgeParams::uniform(&g, rho, 1.0);
        prop_assert!(p.validate(&g).is_ok());
        p.scale_rho(s);
        prop_assert!(p.validate(&g).is_ok());
    }

    /// The binary graph codec round-trips every generated topology to
    /// structural equality: same shape, same factor edge ranges, same
    /// edge→variable map.
    #[test]
    fn graph_codec_roundtrip(g in arb_graph(10, 14)) {
        use paradmm::graph::io::{decode_graph, encode_graph};
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        let back = decode_graph(&buf).unwrap();
        prop_assert!(back.validate().is_ok());
        prop_assert_eq!(back.dims(), g.dims());
        prop_assert_eq!(back.num_vars(), g.num_vars());
        prop_assert_eq!(back.num_factors(), g.num_factors());
        prop_assert_eq!(back.num_edges(), g.num_edges());
        for a in g.factors() {
            prop_assert_eq!(back.factor_edge_range(a), g.factor_edge_range(a));
        }
        for e in g.edges() {
            prop_assert_eq!(back.edge_var(e), g.edge_var(e));
        }
        for b in g.vars() {
            prop_assert_eq!(back.var_edges(b), g.var_edges(b));
        }
    }

    /// Per-edge ρ/α survive the codec bit-for-bit against the decoded
    /// graph's own validation.
    #[test]
    fn params_codec_roundtrip(
        g in arb_graph(8, 10),
        seed in 0u64..1000,
    ) {
        use paradmm::graph::io::{decode_params, encode_params};
        let mut p = EdgeParams::uniform(&g, 1.0, 1.0);
        for (i, r) in p.rho.iter_mut().enumerate() {
            *r = 0.01 + (seed as f64 + i as f64 * 0.7).sin().abs() * 10.0;
        }
        for (i, a) in p.alpha.iter_mut().enumerate() {
            *a = 0.01 + (seed as f64 + i as f64 * 1.3).cos().abs() * 2.0;
        }
        let mut buf = Vec::new();
        encode_params(&p, &mut buf);
        let back = decode_params(&buf, &g).unwrap();
        prop_assert_eq!(&back.rho, &p.rho);
        prop_assert_eq!(&back.alpha, &p.alpha);
    }

    /// A full ADMM state checkpoint round-trips bit-for-bit (including
    /// z_prev, negative zeros and all), so warm restarts resume on
    /// exactly the iterate that was saved.
    #[test]
    fn store_codec_roundtrip(
        g in arb_graph(8, 10),
        seed in 0u64..1000,
    ) {
        use paradmm::graph::io::{decode_store, encode_store};
        let mut store = VarStore::zeros(&g);
        let mut k = 0usize;
        for arr in [&mut store.x, &mut store.m, &mut store.u, &mut store.n, &mut store.z] {
            for v in arr.iter_mut() {
                *v = (seed as f64 * 0.11 + k as f64 * 0.37).sin() * 1e3;
                k += 1;
            }
        }
        store.snapshot_z();
        store.z_prev[0] = -0.0; // sign-of-zero must survive
        let mut buf = Vec::new();
        encode_store(&store, &mut buf);
        let back = decode_store(&buf, &g).unwrap();
        prop_assert_eq!(&back.x, &store.x);
        prop_assert_eq!(&back.m, &store.m);
        prop_assert_eq!(&back.u, &store.u);
        prop_assert_eq!(&back.n, &store.n);
        prop_assert_eq!(&back.z, &store.z);
        for (a, b) in back.z_prev.iter().zip(&store.z_prev) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Truncating an encoded graph anywhere must error, never panic or
    /// yield a structurally invalid graph. `frac` spans the whole buffer,
    /// so cut lengths from 0 through `len − 1` (dropping only the final
    /// byte) are all generated.
    #[test]
    fn graph_codec_rejects_truncation(g in arb_graph(6, 8), frac in 0.0f64..1.0) {
        use paradmm::graph::io::{decode_graph, encode_graph};
        let mut buf = Vec::new();
        encode_graph(&g, &mut buf);
        let cut = (buf.len() as f64 * frac) as usize;
        prop_assert!(decode_graph(&buf[..cut]).is_err());
        // The single-byte truncation must always be exercised: the last
        // byte is load-bearing (it ends the edge-target array).
        prop_assert!(decode_graph(&buf[..buf.len() - 1]).is_err());
    }
}
