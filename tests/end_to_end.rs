//! Cross-crate integration tests: the full pipeline (problem construction
//! → engine → extraction) for all three paper domains, across all
//! schedulers and the simulated GPU.

use paradmm::core::{
    Scheduler, SerialBackend, Solver, SolverOptions, StoppingCriteria, SweepExecutor, UpdateTimings,
};
use paradmm::gpusim::{GpuAdmmEngine, SimtDevice};
use paradmm::graph::VarStore;
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::packing::{PackingConfig, PackingProblem, Polygon};
use paradmm::svm::{gaussian_mixture, SvmConfig, SvmProblem};
use rand::SeedableRng;

#[test]
fn packing_all_schedulers_identical() {
    let solve = |scheduler| {
        let (sol, _) = PackingProblem::solve(PackingConfig::new(6), 300, 17, scheduler);
        sol
    };
    let serial = solve(Scheduler::Serial);
    let rayon = solve(Scheduler::Rayon { threads: Some(2) });
    let barrier = solve(Scheduler::Barrier { threads: 3 });
    for i in 0..6 {
        assert_eq!(serial.disks[i].c, rayon.disks[i].c);
        assert_eq!(serial.disks[i].r, rayon.disks[i].r);
        assert_eq!(serial.disks[i].c, barrier.disks[i].c);
        assert_eq!(serial.disks[i].r, barrier.disks[i].r);
    }
}

#[test]
fn gpu_engine_matches_serial_on_mpc() {
    let (_, admm_a) = MpcProblem::build(MpcConfig::new(12), paper_plant());
    let mut gpu = GpuAdmmEngine::new(admm_a, SimtDevice::tesla_k40());
    gpu.run(100);

    let (_, admm_b) = MpcProblem::build(MpcConfig::new(12), paper_plant());
    let mut store = VarStore::zeros(admm_b.graph());
    let mut t = UpdateTimings::new();
    SerialBackend.run_block(&admm_b, &mut store, 100, &mut t);

    assert_eq!(gpu.store().z, store.z);
    assert!(gpu.simulated_seconds() > 0.0);
}

#[test]
fn svm_end_to_end_classifies() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(31);
    let data = gaussian_mixture(80, 2, 6.0, &mut rng);
    let (model, _) = SvmProblem::train(&data, SvmConfig::default(), 2500, Scheduler::Serial);
    assert!(data.accuracy(&model.w, model.b) > 0.95);
}

#[test]
fn packing_respects_constraints_in_square() {
    let config = PackingConfig {
        n_disks: 4,
        container: Polygon::square(1.0),
        rho: 2.0,
        alpha: 1.0,
    };
    let container = config.container.clone();
    let (sol, _) = PackingProblem::solve(config, 5000, 5, Scheduler::Serial);
    assert!(
        sol.worst_overlap() > -0.03,
        "overlap {}",
        sol.worst_overlap()
    );
    assert!(sol.worst_wall_violation(&container) > -0.03);
    let coverage = sol.covered_area() / container.area();
    assert!(coverage > 0.3 && coverage < 1.0, "coverage {coverage}");
}

#[test]
fn mpc_receding_horizon_keeps_pole_up() {
    // Closed-loop: re-plan every cycle, apply the first input. The open-
    // loop plant doubles its tilt every ~0.15 s, so staying near upright
    // over 1 s of simulated time requires working control. (The cart
    // position drifts by design — only the pole angle is the stability
    // criterion; the exact QP controller behaves the same.)
    let sys = paper_plant();
    let mut q = [0.1, 0.0, 0.06, 0.0];
    let mut max_theta = 0.0_f64;
    for _ in 0..25 {
        let mut c = MpcConfig::new(15);
        c.q0 = q;
        let (mpc, admm) = MpcProblem::build(c.clone(), paper_plant());
        let options = SolverOptions {
            scheduler: Scheduler::Serial,
            rho: c.rho,
            alpha: c.alpha,
            stopping: StoppingCriteria::fixed_iterations(3000),
        };
        let mut solver = Solver::from_problem(admm, options);
        solver.run(3000);
        let traj = mpc.extract(solver.store());
        let next = sys.step(&q, &[traj.inputs[0]]);
        q = [next[0], next[1], next[2], next[3]];
        max_theta = max_theta.max(q[2].abs());
    }
    assert!(
        max_theta < 0.1,
        "pole must stay near upright, max |θ| = {max_theta}"
    );
    assert!(
        q[2].abs() < 0.06,
        "final tilt {} should be controlled",
        q[2]
    );
}

#[test]
fn umbrella_prelude_exposes_needed_types() {
    // Compile-time check that the prelude covers the quickstart workflow.
    use paradmm::prelude::*;
    let mut b = GraphBuilder::new(1);
    let v = b.add_var();
    b.add_factor(&[v]);
    let proxes: Vec<Box<dyn ProxOp>> = vec![Box::new(ZeroProx)];
    let mut solver = Solver::new(b.build(), proxes, SolverOptions::default());
    let report = solver.run(3);
    assert_eq!(report.iterations, 3);
}
