//! Reorder-equivalence suite.
//!
//! A locality [`Reordering`] (BFS/RCM or any permutation built from a
//! factor order) relabels factors, edges and variables but preserves the
//! z-fold order of every variable (the reordered graph's `var_edges`
//! lists follow the *source* graph's order — see
//! `Reordering::apply_graph`). Because Algorithm 2's per-output operation
//! sequences are otherwise index-free, solving the reordered problem from
//! a permuted start state and mapping the result back must reproduce the
//! natural-order solve **bit for bit**, on every backend. This suite pins
//! that contract on the paper problem generators and on random graphs —
//! the property that makes RCM a pure throughput knob.
//!
//! Runs use a fixed iteration count (`run_block`), not residual
//! stopping: residual *reduction* folds over edges in array order, so its
//! scalar value can differ in the last ulp under permutation even though
//! every iterate matches.

use paradmm::core::{
    AdmmProblem, SerialBackend, ShardedBackend, SweepExecutor, UpdateTimings, WorkStealingBackend,
};
use paradmm::graph::{GraphBuilder, Reordering, VarStore};
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::packing::{PackingConfig, PackingProblem};
use paradmm::prox::{ProxOp, QuadraticProx};
use paradmm::svm::{gaussian_mixture, SvmConfig, SvmProblem};
use proptest::prelude::*;
use rand::SeedableRng;

const ITERS: usize = 25;

/// Deterministic non-trivial start state in the natural ordering.
fn seeded_store(problem: &AdmmProblem) -> VarStore {
    let mut store = VarStore::zeros(problem.graph());
    for (i, v) in store.n.iter_mut().enumerate() {
        *v = (i as f64 * 0.37).sin();
    }
    for (i, v) in store.z.iter_mut().enumerate() {
        *v = (i as f64 * 0.11).cos();
    }
    store.snapshot_z();
    store
}

fn run(problem: &AdmmProblem, store: &mut VarStore, backend: &mut dyn SweepExecutor) {
    let mut t = UpdateTimings::new();
    backend.run_block(problem, store, ITERS, &mut t);
}

/// Solves `problem` natural-order and reordered, asserting the restored
/// reordered state is bit-identical to the natural one on serial,
/// work-stealing and sharded backends. Consumes the problem (reordering
/// moves the proximal operators).
fn assert_reorder_bit_identical(problem: AdmmProblem, reordering: &Reordering, label: &str) {
    let seed = seeded_store(&problem);

    let mut natural = seed.clone();
    run(&problem, &mut natural, &mut SerialBackend);

    let mut natural_ws = seed.clone();
    run(&problem, &mut natural_ws, &mut WorkStealingBackend::new(3));
    assert_eq!(natural.z, natural_ws.z, "{label}: worksteal z (natural)");

    let mut natural_sh = seed.clone();
    run(&problem, &mut natural_sh, &mut ShardedBackend::new(3));
    assert_eq!(natural.z, natural_sh.z, "{label}: sharded z (natural)");

    let reordered_problem = problem.reordered(reordering);
    let reordered_seed = reordering.apply_store(&seed);

    for (backend, which) in [
        (&mut SerialBackend as &mut dyn SweepExecutor, "serial"),
        (&mut WorkStealingBackend::new(3), "worksteal"),
        (&mut ShardedBackend::new(3), "sharded"),
    ] {
        let mut store = reordered_seed.clone();
        run(&reordered_problem, &mut store, backend);
        let restored = reordering.restore_store(&store);
        assert_eq!(natural.z, restored.z, "{label}: {which} z diverged");
        assert_eq!(natural.x, restored.x, "{label}: {which} x diverged");
        assert_eq!(natural.u, restored.u, "{label}: {which} u diverged");
        assert_eq!(natural.n, restored.n, "{label}: {which} n diverged");
        assert_eq!(natural.m, restored.m, "{label}: {which} m diverged");
    }
}

/// Spread the per-edge ρ so the z-folds are weighted non-uniformly — a
/// uniform ρ would mask fold-order mistakes. Scales the generator's ρ
/// *up* by an edge-dependent factor (scaling down could violate prox
/// curvature bounds, e.g. packing's `q + ρ > 0`).
fn vary_rho(problem: &mut AdmmProblem) {
    for (i, r) in problem
        .params_mut()
        .rho
        .as_mut_slice()
        .iter_mut()
        .enumerate()
    {
        *r *= 1.0 + 0.5 * (i as f64 * 0.29).sin().abs();
    }
}

#[test]
fn packing_rcm_solves_bit_identically() {
    let (_, mut problem) = PackingProblem::build(PackingConfig::new(7));
    vary_rho(&mut problem);
    let r = Reordering::rcm(problem.graph());
    assert_reorder_bit_identical(problem, &r, "packing/rcm");
}

#[test]
fn mpc_rcm_solves_bit_identically() {
    let (_, mut problem) = MpcProblem::build(MpcConfig::new(10), paper_plant());
    vary_rho(&mut problem);
    let r = Reordering::rcm(problem.graph());
    assert_reorder_bit_identical(problem, &r, "mpc/rcm");
}

#[test]
fn svm_rcm_solves_bit_identically() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
    let data = gaussian_mixture(40, 2, 4.0, &mut rng);
    let (_, mut problem) = SvmProblem::build(&data, SvmConfig::default());
    vary_rho(&mut problem);
    let r = Reordering::rcm(problem.graph());
    assert_reorder_bit_identical(problem, &r, "svm/rcm");
}

#[test]
fn imbalanced_hub_rcm_solves_bit_identically() {
    let mut problem = paradmm_bench::imbalanced_problem(4, 9);
    vary_rho(&mut problem);
    let r = Reordering::rcm(problem.graph());
    assert_reorder_bit_identical(problem, &r, "imbalanced/rcm");
}

/// Random sparse problem: factors of degree 1–4 over `nv` variables with
/// quadratic operators and non-uniform ρ.
fn random_problem(nv: usize, picks: &[usize], dims: usize) -> AdmmProblem {
    let mut b = GraphBuilder::new(dims);
    let vs = b.add_vars(nv);
    let mut degs = Vec::new();
    let mut i = 0;
    while i < picks.len() {
        let deg = 1 + picks[i] % 4;
        let mut vars = Vec::new();
        for k in 0..deg {
            let v = vs[picks[(i + 1 + k) % picks.len()] % nv];
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        degs.push(vars.len());
        b.add_factor(&vars);
        i += deg + 1;
    }
    let g = b.build();
    let proxes: Vec<Box<dyn ProxOp>> = degs
        .iter()
        .enumerate()
        .map(|(a, &deg)| {
            let len = deg * dims;
            let target: Vec<f64> = (0..len)
                .map(|j| ((a * 7 + j) as f64 * 0.41).sin())
                .collect();
            Box::new(QuadraticProx::isotropic(len, 1.0, &target)) as Box<dyn ProxOp>
        })
        .collect();
    let mut problem = AdmmProblem::new(g, proxes, 1.0, 1.0);
    vary_rho(&mut problem);
    problem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Permute → solve → inverse-permute is bit-identical to the natural
    /// solve on random graphs, for both RCM and a random factor order.
    #[test]
    fn random_graphs_solve_bit_identically(
        nv in 2usize..16,
        picks in proptest::collection::vec(0usize..50, 4..60),
        dims in 1usize..6,
        shuffle_key in 1usize..1000,
    ) {
        let probe = random_problem(nv, &picks, dims);
        prop_assume!(probe.graph().num_factors() >= 2);

        let rcm = Reordering::rcm(probe.graph());
        // A second, arbitrary (non-locality-driven) permutation: sort
        // factors by a keyed hash. Equivalence must hold for ANY order.
        let nf = probe.graph().num_factors();
        let mut order: Vec<paradmm::graph::FactorId> = probe.graph().factors().collect();
        order.sort_by_key(|a| (a.idx() * shuffle_key) % nf);
        let arbitrary = Reordering::from_factor_order(probe.graph(), &order);

        assert_reorder_bit_identical(probe, &rcm, "random/rcm");
        let again = random_problem(nv, &picks, dims);
        assert_reorder_bit_identical(again, &arbitrary, "random/arbitrary");
    }
}
