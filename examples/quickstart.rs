//! Quickstart: solve a tiny consensus problem with the factor-graph ADMM.
//!
//! Minimizes `(s − 1)² + (s − 5)² + |s|` over a single scalar by wiring
//! three factors (two quadratics and an ℓ₁ term) to one variable node —
//! the smallest possible demonstration of the paper's workflow: build a
//! graph with `addNode`-style calls, supply serial proximal operators,
//! and let the engine iterate.
//!
//! Run: `cargo run --example quickstart`

use paradmm::prelude::*;

fn main() {
    // 1. Topology: one variable, three factors touching it.
    let mut builder = GraphBuilder::new(1);
    let s = builder.add_var();
    builder.add_factor(&[s]);
    builder.add_factor(&[s]);
    builder.add_factor(&[s]);
    let graph = builder.build();

    // 2. One proximal operator per factor (all closed-form, all serial).
    let proxes: Vec<Box<dyn ProxOp>> = vec![
        Box::new(QuadraticProx::isotropic(1, 2.0, &[1.0])), // (s−1)²
        Box::new(QuadraticProx::isotropic(1, 2.0, &[5.0])), // (s−5)²
        Box::new(L1Prox::new(1.0)),                         // |s|
    ];

    // 3. Solve. Swap `Scheduler::Serial` for `Scheduler::Rayon { threads:
    //    None }` and the same serial operators run data-parallel.
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: 1.0,
        alpha: 1.0,
        stopping: StoppingCriteria {
            max_iters: 2000,
            eps_abs: 1e-10,
            eps_rel: 1e-8,
            check_every: 10,
        },
    };
    let mut solver = Solver::new(graph, proxes, options);
    let report = solver.run_default();

    let z = solver.store().z_var(VarId(0))[0];
    println!(
        "stopped after {} iterations ({:?})",
        report.iterations, report.stop_reason
    );
    println!("update-time breakdown: {}", report.timings.breakdown());
    println!("minimizer z = {z:.6}");
    // Analytic optimum: d/ds [(s−1)² + (s−5)² + |s|] = 0 → s = 11/4.
    println!("analytic    = {:.6}", 11.0 / 4.0);
    assert!((z - 2.75).abs() < 1e-4, "should match the analytic optimum");
}
