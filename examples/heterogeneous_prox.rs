//! Heterogeneous proximal operators: the measured cost-model planner vs
//! uniform chunking.
//!
//! The paper's future-work item 2 asks for *automatic per-operator
//! tuning*: when one factor's proximal operator costs 100× another's, a
//! static split by factor **count** hands one worker all the expensive
//! operators and leaves the rest spinning at the pass barrier. The
//! `Planner` times every operator, attaches the measured costs to the
//! x+m pass, and static backends split by cumulative **cost** instead —
//! same iterates, bit for bit (any legal plan is), different wall clock.
//!
//! This example builds a consensus problem whose first few factors run a
//! deliberately expensive numerically-minimized operator while hundreds
//! of others run closed-form quadratics — heavy operators clustered at
//! the front, the worst case for a count split — and measures the
//! barrier backend under the default uniform fused plan vs the
//! measured plan.
//!
//! Run: `cargo run --release --example heterogeneous_prox [threads]`

use std::time::Instant;

use paradmm::core::plan_report;
use paradmm::prelude::*;

/// Consensus chain: `heavy` expensive factors first, then `light` cheap
/// ones, each pinning its variable toward a target.
fn build_problem(heavy: usize, light: usize) -> AdmmProblem {
    let mut b = GraphBuilder::new(1);
    let vs = b.add_vars(heavy + light + 1);
    let mut proxes: Vec<Box<dyn ProxOp>> = Vec::new();
    for i in 0..heavy {
        b.add_factor(&[vs[i], vs[i + 1]]);
        // Numerically minimized objective with a deliberately expensive
        // evaluation — stands in for any black-box operator (a KKT
        // solve, a projection without closed form).
        proxes.push(Box::new(NumericProx::new(move |x: &[f64]| {
            let mut acc = 0.0;
            for v in x {
                let mut s = *v;
                for _ in 0..60 {
                    s = (s * 0.9).sin() + 0.1 * *v;
                }
                acc += (s - 0.3).powi(2) + v.powi(2);
            }
            acc
        })));
    }
    for i in heavy..heavy + light {
        b.add_factor(&[vs[i], vs[i + 1]]);
        let t = (i as f64 * 0.17).sin();
        proxes.push(Box::new(QuadraticProx::isotropic(2, 1.0, &[t, -t])));
    }
    AdmmProblem::new(b.build(), proxes, 1.0, 1.0)
}

fn measure(problem: &AdmmProblem, backend: &mut dyn SweepExecutor, iters: usize) -> f64 {
    let mut store = VarStore::zeros(problem.graph());
    let mut t = UpdateTimings::new();
    backend.run_block(problem, &mut store, 3, &mut t); // warm-up
    let start = Instant::now();
    backend.run_block(problem, &mut store, iters, &mut t);
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let threads = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|v| v.get())
                .unwrap_or(2)
        });
    let (heavy, light) = (2 * threads, 600);
    let mut problem = build_problem(heavy, light);
    let iters = 60;

    // Uniform fused plan (the default): factor-count splits.
    problem.clear_plan();
    let uniform_s = {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            best = best.min(measure(&problem, &mut BarrierBackend::new(threads), iters));
        }
        best
    };

    // Measured plan: the planner times each operator and weights the
    // x+m split so every worker owns an equal share of operator seconds.
    let planner = Planner::new();
    let costs = planner.measure(&problem);
    let plan = planner.plan_from_costs(&problem, &costs);
    println!("{}", plan_report(&plan, &costs, &problem));
    problem.set_plan(plan);
    let planned_s = {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            best = best.min(measure(&problem, &mut BarrierBackend::new(threads), iters));
        }
        best
    };

    println!("barrier[{threads}] uniform fused plan : {uniform_s:.3e} s/iter");
    println!("barrier[{threads}] measured-cost plan : {planned_s:.3e} s/iter");
    println!(
        "cost-model speedup: {:.2}× ({} heavy operators clustered at the front, {} light)",
        uniform_s / planned_s,
        heavy,
        light
    );
    if planned_s <= uniform_s {
        println!("PASS: the measured planner beat (or matched) uniform chunking");
    } else {
        println!(
            "note: uniform chunking won this run — expected on machines with fewer \
             physical cores than workers (time-slicing erases the imbalance the \
             weighted split fixes) or when timing noise dominates"
        );
    }
}
