//! Circle packing in a triangle — the paper's combinatorial-optimization
//! workload (§V-A).
//!
//! Packs N disks into an equilateral triangle by ADMM, prints coverage
//! and constraint violations, and renders the layout as ASCII art.
//!
//! Run: `cargo run --release --example circle_packing [N] [backend]`
//! where `backend` is a `BackendSpec` string: `serial`, `rayon[:N]`,
//! `barrier[:N]`, `async[:N]`, `worksteal[:N]`, `sharded[:N]`,
//! `fleet[:N]`, or `auto[:N]`.
//!
//! `worksteal` claims chunks of every sweep from a shared atomic work
//! index; `sharded` splits the factor graph into partition-local stores
//! (one worker per shard) with a real halo exchange per iteration —
//! note packing's all-pairs collision factors put nearly every variable
//! in the halo, the worst case for sharding; `auto` probes all five
//! synchronous backends on the actual problem for a few iterations and
//! locks in the fastest.

use paradmm::core::{BackendSpec, SweepExecutor};
use paradmm::packing::{PackingConfig, PackingProblem, Polygon};

/// Picks an execution backend from its [`BackendSpec`] text form
/// (`serial`, `rayon:4`, `worksteal`, `auto`, …).
fn backend_by_name(name: &str) -> Box<dyn SweepExecutor> {
    match name.parse::<BackendSpec>() {
        Ok(spec) => spec.to_backend(),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let backend = backend_by_name(std::env::args().nth(2).as_deref().unwrap_or("rayon"));
    let config = PackingConfig {
        n_disks: n,
        container: Polygon::triangle(1.0),
        rho: 2.0,
        alpha: 1.0,
    };
    let container = config.container.clone();
    let iters = 6000;
    println!(
        "packing {n} disks into a unit triangle, {iters} ADMM iterations on the {} backend…",
        backend.name()
    );

    let (solution, _) = PackingProblem::solve_with_backend(config, iters, 2024, backend);

    let coverage = solution.covered_area() / container.area();
    println!(
        "covered area:        {:.4} ({:.1}% of the triangle)",
        solution.covered_area(),
        100.0 * coverage
    );
    println!(
        "worst pair overlap:  {:+.5} (≥ ~0 means disjoint)",
        solution.worst_overlap()
    );
    println!(
        "worst wall distance: {:+.5} (≥ ~0 means inside)",
        solution.worst_wall_violation(&container)
    );

    // ASCII render: 60×30 grid over the bounding box.
    let (w, h) = (60usize, 30usize);
    let height = 3.0_f64.sqrt() / 2.0;
    let mut canvas = vec![vec![' '; w]; h];
    for (row, line) in canvas.iter_mut().enumerate() {
        for (col, cell) in line.iter_mut().enumerate() {
            let x = col as f64 / w as f64;
            let y = height * (1.0 - row as f64 / h as f64);
            if !container.contains([x, y]) {
                continue;
            }
            *cell = '.';
            for (i, d) in solution.disks.iter().enumerate() {
                let dx = x - d.c[0];
                let dy = y - d.c[1];
                if dx * dx + dy * dy <= d.r * d.r {
                    *cell = char::from_digit((i % 36) as u32, 36).unwrap_or('#');
                    break;
                }
            }
        }
    }
    for line in canvas {
        println!("{}", line.into_iter().collect::<String>());
    }

    // Also dump an SVG artefact for close inspection.
    let svg = paradmm::packing::render_svg(&container, &solution.disks, 600.0);
    let path = std::env::temp_dir().join("packing.svg");
    if std::fs::write(&path, svg).is_ok() {
        println!("\nSVG written to {}", path.display());
    }
}
