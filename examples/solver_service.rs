//! Solver-as-a-service: spawn the TCP solve server, stream MPC
//! requests at it from a pipelined client, and read the results back
//! in completion order.
//!
//! The server runs a continuous-batching engine: requests whose `dims`
//! match are coalesced into one fused block-diagonal pack (joining
//! mid-flight at repack boundaries), `Priority::Critical` requests are
//! served on a dedicated fleet round, and completed solutions populate
//! a warm-start cache keyed by problem fingerprint — a re-submitted
//! problem (an MPC controller re-solving every tick) starts from the
//! previous solution. Every result is bit-identical to a solo serial
//! solve of the same request.
//!
//! Run: `cargo run --release --example solver_service`

use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::prelude::*;
use paradmm::serve::{ServeClient, ServerConfig, ServerHandle};

fn mpc_request(user: usize) -> SolveRequest {
    let t = user as f64 * 0.37;
    let mut cfg = MpcConfig::new(4 + (user % 5));
    cfg.q0 = [
        0.1 + 0.05 * t.sin(),
        0.02 * t.cos(),
        0.05 - 0.03 * (1.3 * t).sin(),
        0.01 * (0.7 * t).cos(),
    ];
    let (_, problem) = MpcProblem::build(cfg, paper_plant());
    SolveRequest::new(problem).with_stopping(StoppingCriteria {
        max_iters: 3000,
        eps_abs: 1e-6,
        eps_rel: 1e-4,
        check_every: 25,
    })
}

fn main() {
    // Port 0 = ephemeral; in production this would be a fixed address.
    let server = ServerHandle::spawn("127.0.0.1:0", ServerConfig::default())
        .expect("bind an ephemeral port");
    println!("solve server listening on {}", server.addr());

    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // Pipeline a burst of requests — no waiting between submissions, so
    // the engine coalesces them into one fused pack.
    let n = 12;
    for user in 0..n {
        client.submit(&mpc_request(user), true).expect("submit");
    }
    for _ in 0..n {
        let (id, result) = client.recv_any().expect("response");
        let outcome = result.expect("server-side solve");
        println!(
            "  request {id:2}: {:4} iterations, {:?}, lane {:?}{}",
            outcome.iterations,
            outcome.stop_reason,
            outcome.lane,
            if outcome.warm_started {
                ", warm-started"
            } else {
                ""
            },
        );
    }

    // The same controller one tick later: the warm-start cache seeds it
    // from the converged solution instead of zeros (bit-identical to a
    // solo solve given the same warm start).
    let warm = client.solve(&mpc_request(0), true).expect("resubmit");
    println!(
        "resubmitted request: {} iterations ({}), {:?}",
        warm.iterations,
        if warm.warm_started {
            "warm-started from cache"
        } else {
            "cold"
        },
        warm.stop_reason,
    );

    let engine = server.shutdown();
    let stats = engine.stats();
    println!(
        "served {} requests: {} batched, {} fleet, {} mid-flight joins, {} cache hits",
        stats.completed, stats.batch_served, stats.fleet_served, stats.joins, stats.cache_hits,
    );
}
