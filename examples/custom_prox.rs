//! Writing your own proximal operator: Lasso regression on a factor graph.
//!
//! Solves `minimize ½‖Aw − y‖² + λ‖w‖₁` by splitting the objective into a
//! least-squares factor (a *custom* operator whose prox solves a small
//! linear system with the in-tree Cholesky) and the library ℓ₁ factor,
//! coupled through one variable node. This is the workflow the paper's
//! §III describes: the user writes only this serial operator and gets the
//! parallel engine for free.
//!
//! Run: `cargo run --release --example custom_prox`

use paradmm::linalg::{Cholesky, Matrix};
use paradmm::prelude::*;

/// Prox of `f(w) = ½‖Aw − y‖²`:
/// `argmin ½‖Aw − y‖² + ρ/2‖w − n‖² = (AᵀA + ρI)⁻¹(Aᵀy + ρn)`.
struct LeastSquaresProx {
    ata: Matrix,
    aty: Vec<f64>,
}

impl LeastSquaresProx {
    fn new(a: &Matrix, y: &[f64]) -> Self {
        LeastSquaresProx {
            ata: a.transpose().matmul(a),
            aty: a.matvec_t(y),
        }
    }
}

impl ProxOp for LeastSquaresProx {
    fn prox(&self, ctx: &mut ProxCtx<'_>) {
        let rho = ctx.rho[0];
        let d = self.ata.rows();
        let mut m = self.ata.clone();
        for i in 0..d {
            m[(i, i)] += rho;
        }
        let rhs: Vec<f64> = (0..d).map(|i| self.aty[i] + rho * ctx.n[i]).collect();
        let sol = Cholesky::factor(&m).expect("AᵀA + ρI is SPD").solve(&rhs);
        ctx.x.copy_from_slice(&sol);
    }
    fn cost_estimate(&self, _degree: usize, dims: usize) -> f64 {
        (dims * dims * dims) as f64 / 3.0
    }
    fn name(&self) -> &'static str {
        "least-squares"
    }
}

fn main() {
    // Ground truth: sparse w* = (3, 0, −2, 0, 0); A is a fixed 20×5 design.
    let d = 5;
    let rows = 20;
    let mut a_data = Vec::with_capacity(rows * d);
    let mut state = 1234567_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1_u64 << 53) as f64) * 2.0 - 1.0
    };
    for _ in 0..rows * d {
        a_data.push(next());
    }
    let a = Matrix::from_vec(rows, d, a_data);
    let w_true = [3.0, 0.0, -2.0, 0.0, 0.0];
    let y = a.matvec(&w_true);

    // Factor graph: one d-dimensional variable, two factors.
    let lambda = 0.5;
    let mut builder = GraphBuilder::new(d);
    let w = builder.add_var();
    builder.add_factor(&[w]); // least-squares factor (custom)
    builder.add_factor(&[w]); // λ‖w‖₁ factor (library)
    let graph = builder.build();
    let proxes: Vec<Box<dyn ProxOp>> = vec![
        Box::new(LeastSquaresProx::new(&a, &y)),
        Box::new(L1Prox::new(lambda)),
    ];

    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: 1.0,
        alpha: 1.0,
        stopping: StoppingCriteria {
            max_iters: 5000,
            eps_abs: 1e-10,
            eps_rel: 1e-9,
            check_every: 20,
        },
    };
    let mut solver = Solver::new(graph, proxes, options);
    let report = solver.run_default();
    let w_hat = solver.store().z_var(VarId(0));

    println!(
        "lasso via custom prox, stopped after {} iterations ({:?})",
        report.iterations, report.stop_reason
    );
    println!("w_true = {w_true:?}");
    println!(
        "w_hat  = [{}]",
        w_hat
            .iter()
            .map(|v| format!("{v:+.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // The ℓ₁ penalty biases magnitudes down but must recover the support.
    assert!(
        w_hat[0] > 1.5 && w_hat[2] < -1.0,
        "support components recovered"
    );
    assert!(w_hat[1].abs() < 0.3 && w_hat[3].abs() < 0.3 && w_hat[4].abs() < 0.3);
    println!("sparse support recovered ✓");
}
