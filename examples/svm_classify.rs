//! Soft-margin SVM training — the paper's machine-learning workload
//! (§V-C): train on two Gaussians, report accuracy, and cross-check
//! against a Pegasos subgradient baseline.
//!
//! Run: `cargo run --release --example svm_classify [N] [dim]`

use paradmm::core::RayonBackend;
use paradmm::svm::{gaussian_mixture, pegasos_train, SvmConfig, SvmProblem};
use rand::SeedableRng;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let dim: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let train = gaussian_mixture(n, dim, 4.0, &mut rng);
    let test = gaussian_mixture(n, dim, 4.0, &mut rng);

    println!("training soft-margin SVM on N = {n}, d = {dim} (two Gaussians, separation 4σ)…");
    let config = SvmConfig::default();
    let lambda = config.lambda;
    // Any SweepExecutor backend drops into the same training loop; the
    // synchronous backends are bit-identical, so rayon is a free speedup.
    let (model, _) =
        SvmProblem::train_with_backend(&train, config, 4000, Box::new(RayonBackend::new(None)));
    println!(
        "ADMM model:    w = {:?}, b = {:+.4}",
        &model.w[..dim.min(4)],
        model.b
    );
    println!(
        "  train accuracy {:.2}%",
        100.0 * train.accuracy(&model.w, model.b)
    );
    println!(
        "  test  accuracy {:.2}%",
        100.0 * test.accuracy(&model.w, model.b)
    );
    println!("  primal objective {:.4}", model.objective(&train, lambda));

    let (pw, pb) = pegasos_train(&train, lambda / n as f64, 30, &mut rng);
    println!("Pegasos model: w = {:?}, b = {pb:+.4}", &pw[..dim.min(4)]);
    println!("  train accuracy {:.2}%", 100.0 * train.accuracy(&pw, pb));
    println!("  test  accuracy {:.2}%", 100.0 * test.accuracy(&pw, pb));
}
