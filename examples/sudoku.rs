//! Sudoku by non-convex message-passing ADMM — the combinatorial domain
//! of the paper's references [9]/[24], on the same engine as everything
//! else: all-different factors project onto permutation matrices, clue
//! factors anchor the givens, and consensus does the reasoning.
//!
//! Run: `cargo run --release --example sudoku`

use paradmm::sudoku::{Grid, SudokuConfig, SudokuProblem};

fn print_grid(grid: &Grid) {
    let n = grid.side();
    for r in 0..n {
        if r > 0 && r % grid.box_side == 0 {
            println!("{}", "-".repeat(2 * n + grid.box_side - 1));
        }
        let mut line = String::new();
        for c in 0..n {
            if c > 0 && c % grid.box_side == 0 {
                line.push_str("| ");
            }
            let v = grid.get(r, c);
            line.push_str(&if v == 0 { ". ".into() } else { format!("{v} ") });
        }
        println!("{line}");
    }
}

fn main() {
    let givens = Grid::parse(
        3,
        "530070000
         600195000
         098000060
         800060003
         400803001
         700020006
         060000280
         000419005
         000080079",
    );
    println!("puzzle:");
    print_grid(&givens);

    let config = SudokuConfig {
        iters_per_attempt: 4000,
        ..SudokuConfig::default()
    };
    match SudokuProblem::solve(&givens, &config, 2024) {
        Some((solution, iters)) => {
            println!("\nsolved after {iters} ADMM iterations:");
            print_grid(&solution);
            assert!(solution.is_solved());
            assert!(solution.is_completion_of(&givens));
        }
        None => println!("\nno solution found within the attempt budget (try another seed)"),
    }
}
