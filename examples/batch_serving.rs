//! Batch serving: pack many small independent problems into one fused
//! store and solve them together through a single backend.
//!
//! A serving workload — one MPC horizon per user, one puzzle per
//! request — is the opposite shape of the paper's benchmarks: instead
//! of one large factor-graph, many tiny ones, where each solo solve
//! pays the backend's sweep-launch overhead over and over.
//! `BatchSolver` packs the instances block-diagonally (`BatchStore`),
//! launches the sweeps once per batch, tracks residuals **per
//! instance**, and freezes converged instances early so stragglers keep
//! the hardware to themselves. Each instance's iterates are
//! bit-identical to a solo serial solve.
//!
//! Run: `cargo run --release --example batch_serving [backend]` where
//! `backend` is a `BackendSpec` string (`serial`, `rayon:2`,
//! `worksteal:4`, `auto`, …); the default is `worksteal:2`.

use std::time::Instant;

use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};
use paradmm::prelude::*;

fn build_instances(n: usize) -> Vec<(MpcProblem, AdmmProblem)> {
    (0..n)
        .map(|i| {
            let t = i as f64 * 0.37;
            // Every "user" flies the same pendulum from a different
            // state, over a different horizon.
            let mut cfg = MpcConfig::new(4 + (i % 5));
            cfg.q0 = [
                0.1 + 0.05 * t.sin(),
                0.02 * t.cos(),
                0.05 - 0.03 * (1.3 * t).sin(),
                0.01 * (0.7 * t).cos(),
            ];
            MpcProblem::build(cfg, paper_plant())
        })
        .collect()
}

fn main() {
    let spec = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "worksteal:2".into());
    let scheduler = match spec.parse::<BackendSpec>() {
        Ok(spec) => spec.to_scheduler(),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let n = 24;
    let options = SolverOptions {
        scheduler,
        stopping: StoppingCriteria {
            max_iters: 3000,
            eps_abs: 1e-6,
            eps_rel: 1e-4,
            check_every: 25,
        },
        ..SolverOptions::default()
    };

    // Batched: one fused solve, per-instance freezing.
    let (mpcs, problems): (Vec<_>, Vec<_>) = build_instances(n).into_iter().unzip();
    let mut batch = BatchSolver::new(problems, options);
    let t0 = Instant::now();
    let report = batch.run_default();
    let batched_s = t0.elapsed().as_secs_f64();

    println!("batched {n} MPC instances on `{}`:", batch.backend_name());
    for (i, (mpc, r)) in mpcs.iter().zip(&report.instances).enumerate() {
        let traj = mpc.extract(batch.store(i));
        println!(
            "  user {i:2}: horizon {:2}, {:4} iterations, {:?}, u(0) = {:+.4}",
            mpc.config().horizon,
            r.iterations,
            r.stop_reason,
            traj.inputs[0],
        );
    }
    println!(
        "  → {}/{} converged, {:.1} instances/sec (straggler ran {} iterations)",
        report.converged_count(),
        n,
        report.instances_per_second(),
        report.max_iterations(),
    );

    // The same work as sequential solo solves, for contrast.
    let (_, problems): (Vec<_>, Vec<_>) = build_instances(n).into_iter().unzip();
    let t0 = Instant::now();
    for p in problems {
        let mut solver = Solver::from_problem(p, options);
        solver.run_default();
    }
    let solo_s = t0.elapsed().as_secs_f64();
    println!(
        "sequential solo on the same backend: {:.1} instances/sec → batching bought {:.2}×",
        n as f64 / solo_s,
        solo_s / batched_s,
    );
}
