//! Model-predictive control of an inverted pendulum — the paper's optimal
//! control workload (§V-B), including the real-time receding-horizon loop
//! the paper describes (graph built once, state refreshed every cycle,
//! warm-started iterations).
//!
//! Run: `cargo run --release --example pendulum_mpc`

use paradmm::core::{Scheduler, SerialBackend, Solver, SolverOptions, StoppingCriteria};
use paradmm::mpc::{pendulum::paper_plant, MpcConfig, MpcProblem};

fn main() {
    // One-shot plan: horizon K = 60 from a tilted start.
    let config = MpcConfig::new(60);
    let (traj, mpc) = MpcProblem::solve_with_backend(
        config.clone(),
        paper_plant(),
        15_000,
        Box::new(SerialBackend),
    );
    println!("open-loop plan over K = 60 steps (2.4 s):");
    println!("  cost                    {:.5}", traj.cost(&config));
    println!(
        "  max dynamics residual   {:.2e}",
        traj.max_dynamics_residual(mpc.system())
    );
    println!("  q(0)  = {:?}", traj.states[0]);
    println!("  q(30) = {:?}", traj.states[30]);

    // Receding-horizon control, the paper's real-time loop: build the
    // graph ONCE, then per cycle refresh q₀ (one operator swap), shift the
    // previous plan as a warm start, and run a short iteration burst.
    println!("\nreceding-horizon loop (K = 15, graph built once, warm-started cycles of 2500 iterations):");
    let sys = paper_plant();
    let mut q = [0.12, 0.0, 0.08, 0.0];
    let mut c = MpcConfig::new(15);
    c.q0 = q;
    let (mpc, admm) = MpcProblem::build(c.clone(), paper_plant());
    let options = SolverOptions {
        scheduler: Scheduler::Serial,
        rho: c.rho,
        alpha: c.alpha,
        stopping: StoppingCriteria::fixed_iterations(3000),
    };
    let mut solver = Solver::from_problem(admm, options);
    solver.run(3000); // first plan from cold

    let mut total_cost = 0.0;
    for cycle in 0..20 {
        let traj = mpc.extract(solver.store());
        let u = traj.inputs[0];
        // Apply the first input to the "real" plant and advance.
        let next = sys.step(&q, &[u]);
        q = [next[0], next[1], next[2], next[3]];
        let stage: f64 = q
            .iter()
            .zip(&c.q_weight)
            .map(|(qi, wi)| wi * qi * qi)
            .sum::<f64>()
            + c.r_weight * u * u;
        total_cost += stage;
        if cycle % 5 == 0 {
            println!(
                "  cycle {cycle:2}: u = {u:+.4}, pole angle θ = {:+.5}",
                q[2]
            );
        }
        // Warm-start the next cycle: shift plan, pin measured state.
        let (problem, store) = solver.parts_mut();
        mpc.shift_warm_start(problem, store, q);
        solver.run(2500);
    }
    println!("closed-loop cost over 20 cycles: {total_cost:.5}");
    println!(
        "final pole angle: {:+.5} rad (started at +0.08; uncontrolled it would exceed 0.6)",
        q[2]
    );
}
