//! Run a problem on the simulated SIMT device: exact numerics on the host,
//! modeled Tesla K40 clock, per-kernel breakdown, and ntb auto-tuning —
//! the substitution substrate behind every GPU figure in EXPERIMENTS.md.
//!
//! Run: `cargo run --release --example gpu_simulation`

use paradmm::core::UpdateKind;
use paradmm::gpusim::{GpuAdmmEngine, PcieLink, SimtDevice};
use paradmm::packing::{PackingConfig, PackingProblem};

fn main() {
    let n = 300;
    let (_, problem) = PackingProblem::build(PackingConfig::new(n));
    println!(
        "packing N = {n}: {} factors, {} variables, {} edges",
        problem.graph().num_factors(),
        problem.graph().num_vars(),
        problem.graph().num_edges()
    );

    let mut gpu = GpuAdmmEngine::new(problem, SimtDevice::tesla_k40());
    println!("\nper-kernel stats at the paper's default ntb = 32:");
    for kind in UpdateKind::ALL {
        let s = gpu.kernel_stats(kind);
        println!(
            "  {}-update: {:>9.3} µs  (nb = {:>6}, occupancy {:.2}, bw-util {:.2}, straggler {:.2})",
            kind.label(),
            s.seconds * 1e6,
            s.nb,
            s.occupancy,
            s.bw_utilization,
            s.straggler_factor
        );
    }

    let tuned = gpu.tune_ntb();
    println!("\nauto-tuned ntb per kernel (x, m, z, u, n): {tuned:?}");
    let b = gpu.iteration_breakdown();
    println!("simulated iteration time: {:.3} µs", b.total() * 1e6);
    for kind in UpdateKind::ALL {
        println!(
            "  {}-update: {:.1}%",
            kind.label(),
            100.0 * b.fraction(kind)
        );
    }

    // Run real numerics against the simulated clock.
    gpu.run(100);
    println!(
        "\nafter {} iterations: simulated device time {:.3} ms",
        gpu.iterations(),
        gpu.simulated_seconds() * 1e3
    );

    let link = PcieLink::pcie3_x16();
    println!(
        "transfer accounting: z copy-back {:.3} ms, one-time graph upload {:.2} s",
        link.copy_z_back(gpu.store()) * 1e3,
        link.upload_graph(gpu.problem().graph(), gpu.store())
    );
}
