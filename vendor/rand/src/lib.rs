//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset parADMM uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over `f64` and
//! integer ranges. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, which is all the callers rely on
//! (the exact stream differs from upstream `rand`).

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, i64, i32);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, the
            // construction the xoshiro authors recommend.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn usize_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
