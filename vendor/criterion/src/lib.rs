//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the API subset its benches use: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately lightweight — a short warm-up, then timed
//! batches until a small budget elapses, reporting the best
//! per-iteration time (least-noise estimator). Passing `--test` (as
//! `cargo test --benches` does) runs every body exactly once instead.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up budget before measuring.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Identifier combining a function name and a parameter, printed as
/// `name/param`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    test_mode: bool,
    /// Best observed seconds per iteration, reported by the group.
    best_s_per_iter: f64,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its per-call wall time.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.test_mode {
            black_box(routine());
            self.best_s_per_iter = 0.0;
            return;
        }
        // Warm-up.
        let warm_start = Instant::now();
        let mut calls = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET || calls == 0 {
            black_box(routine());
            calls += 1;
        }
        // Measure in growing batches; keep the best batch average.
        let per_batch = calls.max(1);
        let mut best = f64::INFINITY;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_BUDGET {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            best = best.min(t0.elapsed().as_secs_f64() / per_batch as f64);
        }
        self.best_s_per_iter = best;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            test_mode: self.criterion.test_mode,
            best_s_per_iter: 0.0,
        };
        f(&mut b);
        if self.criterion.test_mode {
            println!("{}/{id}: ok (test mode)", self.name);
        } else {
            println!("{}/{id}: {:.3e} s/iter", self.name, b.best_s_per_iter);
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        self.run_one(id.id, f);
    }

    /// Benchmarks `f` under `id` with an input value passed through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(id.id, |b| f(b, input));
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` (and `cargo test` on harness-less bench
        // targets) passes --test; run bodies once instead of measuring.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher)) {
        let id = id.into();
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// Bundles benchmark functions under one name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        let mut counter = 0u64;
        group.bench_function("count", |b| b.iter(|| counter += 1));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &p| {
            b.iter(|| black_box(p * 2))
        });
        group.finish();
        assert!(counter > 0);
    }

    #[test]
    fn harness_runs_bodies() {
        // Force test mode so this completes instantly.
        let mut c = Criterion { test_mode: true };
        trivial(&mut c);
    }
}
