//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset its property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`collection::vec`] / [`collection::btree_set`], the [`proptest!`]
//! macro, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics are plain random sampling: each test body runs
//! `ProptestConfig::cases` times on values drawn from a generator seeded
//! by the test's name, so failures are deterministic per test. There is
//! no shrinking — a failing case panics with the sampled values'
//! assertion message directly.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRngCore;
use rand::{Rng, RngCore, SeedableRng};

/// Per-test random source, seeded from the test's name.
pub struct TestRng(TestRngCore);

impl TestRng {
    /// Deterministic generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(TestRngCore::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps every sampled value through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from every sampled value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, usize, u64, u32, i64, i32);

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// An inclusive size window for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with lengths in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Samples `Vec`s of `element` values, lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with target sizes in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Samples `BTreeSet`s of `element` values with target sizes drawn
    /// from `size` (fewer if the element space is too small to fill it).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Bounded attempts: duplicates collapse, and the element space
            // may hold fewer than `target` distinct values.
            for _ in 0..target.saturating_mul(20).max(20) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}

/// The names `use proptest::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body `cases` times on sampled values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                (|| {
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                })();
            }
        }
        $crate::__proptest_fns! { $config; $($rest)* }
    };
    ($config:expr;) => {};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its sampled inputs don't satisfy a
/// precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn map_and_flat_map_compose(v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n..=n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn sets_respect_bounds(s in crate::collection::btree_set(0usize..6, 1..=4)) {
            prop_assert!(!s.is_empty() && s.len() <= 4);
            prop_assert!(s.iter().all(|&x| x < 6));
        }

        #[test]
        fn assume_skips_cases(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn tuple_patterns_bind((a, b) in (0usize..4, 10usize..14)) {
            prop_assert!(a < 4 && (10..14).contains(&b));
        }
    }
}
