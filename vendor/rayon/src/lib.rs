//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the *exact* data-parallel subset parADMM uses and
//! implements it on `std::thread::scope`:
//!
//! * [`prelude`] — `into_par_iter()` on `Vec<T>`, `par_chunks_mut()` on
//!   slices, with `enumerate` / `with_min_len` / `for_each` on the result,
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a *logical* pool:
//!   it pins the worker count used by parallel iterators inside
//!   `install`, spawning scoped threads per call rather than keeping
//!   persistent workers.
//!
//! Semantics match rayon where parADMM can observe them: items are
//! processed exactly once, `for_each` returns only after every item is
//! done, and worker count respects the installed pool. Scheduling is
//! static (contiguous batches) rather than work-stealing; the
//! work-stealing upgrade is exactly what the `Backend` trait exists to
//! make a drop-in replacement.

use std::cell::Cell;

thread_local! {
    /// Worker count pinned by [`ThreadPool::install`]; 0 = use the host's
    /// available parallelism.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel iterators will use on this thread.
pub fn current_num_threads() -> usize {
    let pinned = INSTALLED_THREADS.with(|c| c.get());
    if pinned == 0 {
        host_threads()
    } else {
        pinned
    }
}

/// Error from [`ThreadPoolBuilder::build`] (never produced by this shim;
/// kept for signature compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Fresh builder with the default (host) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count; 0 means the host's available parallelism.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the logical pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 {
            host_threads()
        } else {
            self.num_threads
        };
        Ok(ThreadPool { threads })
    }
}

/// A logical thread pool: fixes the worker count for parallel iterators
/// run inside [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previously-pinned thread count even on panic.
struct InstallGuard {
    prev: usize,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        INSTALLED_THREADS.with(|c| c.set(self.prev));
    }
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count pinned for any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let guard = InstallGuard {
            prev: INSTALLED_THREADS.with(|c| c.replace(self.threads)),
        };
        let out = op();
        drop(guard);
        out
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

/// An indexed parallel iterator over an owned list of items.
pub struct ParIter<T> {
    items: Vec<T>,
    min_len: usize,
}

impl<T: Send> ParIter<T> {
    /// Pairs every item with its index, like `Iterator::enumerate`.
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            min_len: self.min_len,
        }
    }

    /// Lower-bounds the number of items a single worker processes,
    /// limiting how many threads small inputs fan out to.
    pub fn with_min_len(mut self, min: usize) -> Self {
        self.min_len = self.min_len.max(min.max(1));
        self
    }

    /// Pairs items positionally with another parallel iterator's items,
    /// like `Iterator::zip` (rayon's indexed zip; used for fused passes
    /// that write two arrays chunk-by-chunk). Truncates to the shorter
    /// side, matching rayon.
    pub fn zip<U: Send>(self, other: ParIter<U>) -> ParIter<(T, U)> {
        ParIter {
            items: self.items.into_iter().zip(other.items).collect(),
            min_len: self.min_len.max(other.min_len),
        }
    }

    /// Applies `f` to every item, distributing contiguous batches across
    /// scoped worker threads; returns when all items are processed.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        let n = self.items.len();
        if n == 0 {
            return;
        }
        let threads = current_num_threads().min(n.div_ceil(self.min_len)).max(1);
        if threads == 1 {
            for item in self.items {
                f(item);
            }
            return;
        }
        let mut items = self.items;
        let per_batch = n.div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            while !items.is_empty() {
                let take = per_batch.min(items.len());
                let batch: Vec<T> = items.drain(..take).collect();
                scope.spawn(move || {
                    for item in batch {
                        f(item);
                    }
                });
            }
        });
    }
}

/// `into_par_iter()` for owned collections.
pub trait IntoParallelIterator {
    /// Item type produced by the parallel iterator.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter {
            items: self,
            min_len: 1,
        }
    }
}

/// `par_chunks_mut()` for mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
            min_len: 1,
        }
    }
}

/// The traits parADMM imports via `use rayon::prelude::*`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_every_item_once() {
        let hits = AtomicUsize::new(0);
        let items: Vec<usize> = (0..10_000).collect();
        items.into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        let mut data = vec![0.0f64; 1000];
        data.par_chunks_mut(7).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as f64;
            }
        });
        assert_eq!(data[0], 0.0);
        assert_eq!(data[7], 1.0);
        assert_eq!(data[999], (999 / 7) as f64);
    }

    #[test]
    fn enumerate_preserves_order_indices() {
        let items: Vec<u32> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        items
            .into_par_iter()
            .enumerate()
            .with_min_len(8)
            .for_each(|(i, v)| {
                assert_eq!(i as u32, v);
                sum.fetch_add(i, Ordering::Relaxed);
            });
        assert_eq!(sum.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn zip_pairs_chunks_positionally() {
        let mut a = vec![0.0f64; 30];
        let mut b = vec![0.0f64; 30];
        a.par_chunks_mut(3)
            .zip(b.par_chunks_mut(3))
            .enumerate()
            .for_each(|(i, (ca, cb))| {
                for (va, vb) in ca.iter_mut().zip(cb.iter_mut()) {
                    *va = i as f64;
                    *vb = -(i as f64);
                }
            });
        assert_eq!(a[0], 0.0);
        assert_eq!(a[29], 9.0);
        assert_eq!(b[29], -9.0);
    }

    #[test]
    fn install_pins_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn empty_input_is_a_noop() {
        Vec::<usize>::new()
            .into_par_iter()
            .for_each(|_| panic!("no items expected"));
    }
}
