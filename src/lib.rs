//! # parADMM-rs — fine-grained parallel ADMM on a factor-graph
//!
//! Umbrella crate re-exporting the full workspace: a Rust reproduction of
//! *"Testing fine-grained parallelism for the ADMM on a factor-graph"*
//! (Hao, Oghbaee, Rostami, Derbinsky, Bento — IPDPS Workshops 2016,
//! arXiv:1603.02526).
//!
//! The ADMM iteration is expressed as five embarrassingly-parallel update
//! sweeps (x, m, z, u, n) over a bipartite factor-graph; users write only
//! *serial* proximal operators and the engine parallelizes the sweeps.
//! Execution strategies are pluggable [`core::SweepExecutor`] backends:
//! serial, rayon data-parallel, persistent barrier workers, asynchronous
//! activations, or a simulated SIMT GPU device — all driven by the same
//! [`core::Solver`] loop.
//!
//! ## Quick start
//!
//! ```
//! use paradmm::prelude::*;
//!
//! // minimize (s-1)^2 + (s-5)^2 via consensus of two quadratic factors.
//! let mut b = GraphBuilder::new(1);
//! let w = b.add_var();
//! b.add_factor(&[w]);
//! b.add_factor(&[w]);
//! let graph = b.build();
//!
//! let proxes: Vec<Box<dyn ProxOp>> = vec![
//!     Box::new(QuadraticProx::isotropic(1, 1.0, &[1.0])),
//!     Box::new(QuadraticProx::isotropic(1, 1.0, &[5.0])),
//! ];
//! let mut solver = Solver::new(graph, proxes, SolverOptions::default());
//! let report = solver.run(200);
//! assert!(report.iterations <= 200);
//! let z = solver.store().z_var(VarId(0));
//! assert!((z[0] - 3.0).abs() < 1e-6); // midpoint of 1 and 5
//! ```
//!
//! See `examples/` for the paper's three application domains (circle
//! packing, model-predictive control, SVM training) and `crates/bench` for
//! the figure-by-figure reproduction harness.

pub use paradmm_core as core;
pub use paradmm_gpusim as gpusim;
pub use paradmm_graph as graph;
pub use paradmm_linalg as linalg;
pub use paradmm_mpc as mpc;
pub use paradmm_packing as packing;
pub use paradmm_prox as prox;
pub use paradmm_serve as serve;
pub use paradmm_sudoku as sudoku;
pub use paradmm_svm as svm;

/// Convenient glob-import of the most common types.
pub mod prelude {
    pub use paradmm_core::{
        kernel_dispatch, set_kernel_dispatch, AdmmProblem, AsyncBackend, AutoBackend, BackendSpec,
        BarrierBackend, BatchReport, BatchSolver, FleetSolver, InstanceReport, KernelDispatch,
        Pass, PassKind, Planner, Priority, ProxCtx, ProxOp, RayonBackend, Residuals, Scheduler,
        SerialBackend, ShardedBackend, SolveOutcome, SolveRequest, Solver, SolverOptions,
        SolverReport, StopReason, StoppingCriteria, SweepCosts, SweepExecutor, SweepPlan,
        UpdateKind, UpdateTimings, WorkStealingBackend,
    };
    pub use paradmm_gpusim::GpuSimBackend;
    pub use paradmm_graph::{
        AlignedVec, BatchInstance, BatchLayout, BatchStore, EdgeId, EdgeParams, EdgeStream,
        FactorGraph, FactorId, GraphBuilder, GraphStats, Reordering, VarId, VarStore,
    };
    pub use paradmm_prox::{
        AffineEqualityProx, BoxProx, ConsensusEqualityProx, HalfspaceProx, HingeProx, L1Prox,
        NormBallProx, NumericProx, PermutationProx, QuadraticProx, SemiLassoProx, SimplexProx,
        ZeroProx,
    };
}
